"""The 100-candidate ranking protocol and significance tests."""

import numpy as np
import pytest

from repro.evaluation import (
    EvaluationTask,
    evaluate,
    evaluate_filtered,
    one_sample_ttest,
    paired_ttest,
    prepare_task,
    recommend_for_groups,
    top_k_items,
)


def perfect_scorer(world_affinity):
    def score(entities, items):
        return world_affinity[entities, items]

    return score


class TestPrepareTask:
    def test_candidates_exclude_interacted(self, tiny_split):
        full = tiny_split.full
        task = prepare_task(
            tiny_split.test.user_item, full.user_items(), full.num_items,
            num_candidates=20, rng=0,
        )
        interacted = full.user_items()
        for (user, __), row in zip(task.edges, task.candidates):
            assert not set(row.tolist()) & interacted[user]

    def test_shapes(self, tiny_split):
        full = tiny_split.full
        task = prepare_task(
            tiny_split.test.user_item, full.user_items(), full.num_items,
            num_candidates=15, rng=0,
        )
        assert task.candidates.shape == (len(tiny_split.test.user_item), 15)
        assert task.num_candidates == 15

    def test_deterministic(self, tiny_split):
        full = tiny_split.full
        kwargs = dict(num_candidates=10, rng=123)
        first = prepare_task(
            tiny_split.test.user_item, full.user_items(), full.num_items, **kwargs
        )
        second = prepare_task(
            tiny_split.test.user_item, full.user_items(), full.num_items, **kwargs
        )
        np.testing.assert_array_equal(first.candidates, second.candidates)


class TestEvaluate:
    def test_oracle_gets_perfect_metrics(self):
        # A scorer that always ranks the positive first.
        edges = np.array([[0, 3], [1, 4]])
        candidates = np.array([[0, 1], [0, 1]])
        task = EvaluationTask(edges=edges, candidates=candidates)

        def score(entities, items):
            return (items >= 3).astype(float)

        result = evaluate(score, task, ks=(1, 5))
        assert result.metrics["HR@1"] == 1.0
        assert result.metrics["NDCG@1"] == 1.0

    def test_adversarial_scorer_gets_zero(self):
        edges = np.array([[0, 3]])
        candidates = np.array([[0, 1]])
        task = EvaluationTask(edges=edges, candidates=candidates)
        result = evaluate(lambda e, i: -(i >= 3).astype(float), task, ks=(1, 2))
        assert result.metrics["HR@2"] == 0.0

    def test_chunking_invariant(self, tiny_split, trained_tiny_model):
        model, __, __h = trained_tiny_model
        full = tiny_split.full
        task = prepare_task(
            tiny_split.test.user_item, full.user_items(), full.num_items,
            num_candidates=12, rng=0,
        )
        small = evaluate(model.score_user_items, task, chunk=3)
        large = evaluate(model.score_user_items, task, chunk=1000)
        np.testing.assert_allclose(small.ranks, large.ranks)

    def test_empty_task(self):
        task = EvaluationTask(
            edges=np.empty((0, 2), dtype=np.int64), candidates=np.empty((0, 0))
        )
        result = evaluate(lambda e, i: np.zeros(len(e)), task)
        assert result.metrics["HR@5"] == 0.0

    def test_per_example_vectors(self):
        edges = np.array([[0, 3], [1, 4]])
        candidates = np.array([[0, 1], [0, 1]])
        task = EvaluationTask(edges=edges, candidates=candidates)
        result = evaluate(lambda e, i: i.astype(float), task, ks=(1,))
        hr = result.per_example("HR@1")
        ndcg = result.per_example("NDCG@1")
        assert hr.shape == (2,)
        np.testing.assert_array_equal(hr, ndcg)

    def test_per_example_unknown_metric(self):
        task = EvaluationTask(
            edges=np.array([[0, 1]]), candidates=np.array([[0]])
        )
        result = evaluate(lambda e, i: np.zeros(len(e)), task, ks=(1,))
        with pytest.raises(ValueError):
            result.per_example("MRR@1")

    def test_evaluate_filtered(self):
        edges = np.array([[0, 3], [1, 4], [2, 5]])
        candidates = np.array([[0, 1]] * 3)
        task = EvaluationTask(edges=edges, candidates=candidates)
        keep = np.array([True, False, True])
        result = evaluate_filtered(lambda e, i: i.astype(float), task, keep, ks=(1,))
        assert result.ranks.shape == (2,)


class TestSignificance:
    def test_identical_vectors_not_significant(self):
        scores = np.array([1.0, 0.0, 1.0, 1.0])
        result = paired_ttest(scores, scores)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_clear_difference_significant(self, rng):
        better = rng.normal(1.0, 0.1, size=200)
        worse = rng.normal(0.0, 0.1, size=200)
        result = paired_ttest(better, worse)
        assert result.significant(alpha=0.01)
        assert result.statistic > 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            paired_ttest(np.zeros(3), np.zeros(4))

    def test_too_few_examples(self):
        with pytest.raises(ValueError):
            paired_ttest(np.zeros(1), np.zeros(1))

    def test_one_sample(self, rng):
        diffs = rng.normal(0.5, 0.1, size=100)
        assert one_sample_ttest(diffs).significant()
        assert not one_sample_ttest(np.zeros(10)).significant()


class TestRanking:
    def test_top_k_excludes_seen(self):
        scores = np.arange(10, dtype=float)
        top = top_k_items(lambda e, i: scores[i], 0, 10, k=3, exclude={9, 8})
        np.testing.assert_array_equal(top, [7, 6, 5])

    def test_top_k_orders_descending(self):
        top = top_k_items(lambda e, i: -i.astype(float), 0, 5, k=5)
        np.testing.assert_array_equal(top, [0, 1, 2, 3, 4])

    def test_recommend_for_groups(self):
        recs = recommend_for_groups(
            lambda e, i: i.astype(float), [0, 1], num_items=6, k=2
        )
        assert set(recs) == {0, 1}
        np.testing.assert_array_equal(recs[0], [5, 4])

    def test_everything_excluded(self):
        top = top_k_items(lambda e, i: i.astype(float), 0, 3, k=2, exclude={0, 1, 2})
        assert top.size == 0
