"""Protocol edge cases: candidate clipping, width uniformity."""

import numpy as np
import pytest

from repro.data import GroupRecommendationDataset
from repro.evaluation import prepare_task


def tiny_dataset(num_items=12):
    return GroupRecommendationDataset(
        num_users=3,
        num_items=num_items,
        num_groups=1,
        user_item=[(0, 0), (0, 1), (1, 2), (2, 3)],
        group_item=[(0, 4)],
        social=[(0, 1)],
        group_members=[np.array([0, 1])],
    )


class TestCandidateClipping:
    def test_width_clipped_to_feasible(self):
        dataset = tiny_dataset(num_items=12)
        # User 0 has seen 2 items -> 10 unseen; ask for 100.
        task = prepare_task(
            np.array([[0, 5]]), dataset.user_items(), dataset.num_items,
            num_candidates=100, rng=0,
        )
        assert task.candidates.shape == (1, 10)

    def test_width_uniform_across_entities(self):
        dataset = tiny_dataset(num_items=12)
        interacted = dataset.user_items()
        interacted[0].update({4, 5, 6, 7})  # user 0 has fewer unseen items
        edges = np.array([[0, 8], [1, 5]])
        task = prepare_task(edges, interacted, dataset.num_items, 100, rng=0)
        # Uniform width = min over entities of their unseen count.
        assert task.candidates.shape[0] == 2
        assert (task.candidates.shape[1]) == 12 - len(interacted[0])

    def test_no_unseen_items_raises(self):
        interacted = [set(range(12))]
        with pytest.raises(ValueError, match="no unseen"):
            prepare_task(np.array([[0, 3]]), interacted, 12, 100, rng=0)

    def test_requested_width_kept_when_feasible(self):
        dataset = tiny_dataset(num_items=200)
        task = prepare_task(
            np.array([[0, 5]]), dataset.user_items(), dataset.num_items,
            num_candidates=50, rng=0,
        )
        assert task.candidates.shape == (1, 50)

    def test_empty_edges(self):
        dataset = tiny_dataset()
        task = prepare_task(
            np.empty((0, 2), dtype=np.int64), dataset.user_items(), dataset.num_items,
            num_candidates=10, rng=0,
        )
        assert task.candidates.shape == (0, 0)
