"""Graph utilities: adjacency, TF-IDF ranking, propagation, closeness."""

import numpy as np
import pytest

from repro.data import GroupRecommendationDataset
from repro.graphs import (
    common_neighbours,
    degree_sequence,
    direct_connection,
    friend_idf,
    full_attention,
    interaction_matrix,
    is_socially_connected,
    item_idf,
    normalized_propagation,
    pagerank_threshold,
    propagate_embeddings,
    random_top_neighbours,
    social_adjacency,
    tfidf_top_neighbours,
    to_networkx,
)


@pytest.fixture
def dataset():
    return GroupRecommendationDataset(
        num_users=5,
        num_items=4,
        num_groups=2,
        user_item=[(0, 0), (1, 0), (2, 0), (0, 1), (1, 2), (3, 3)],
        group_item=[(0, 0), (1, 1)],
        social=[(0, 1), (1, 2), (2, 3), (0, 2)],
        group_members=[np.array([0, 1, 2]), np.array([2, 3])],
    )


class TestSocial:
    def test_adjacency_symmetric(self, dataset):
        adjacency = social_adjacency(dataset).toarray()
        np.testing.assert_array_equal(adjacency, adjacency.T)
        assert adjacency[0, 1] == 1
        assert adjacency[0, 4] == 0

    def test_degree_sequence(self, dataset):
        np.testing.assert_array_equal(degree_sequence(dataset), [2, 2, 3, 1, 0])

    def test_networkx_export(self, dataset):
        graph = to_networkx(dataset)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 4

    def test_connected_group(self, dataset):
        assert is_socially_connected(np.array([0, 1, 2]), dataset)

    def test_disconnected_group(self, dataset):
        assert not is_socially_connected(np.array([0, 4]), dataset)

    def test_singleton_connected(self, dataset):
        assert is_socially_connected(np.array([4]), dataset)


class TestTfidf:
    def test_item_idf_decreases_with_popularity(self, dataset):
        idf = item_idf(dataset)
        assert idf[0] < idf[1]  # item 0 has 3 interactions, item 1 has 1
        assert idf[1] == idf[2] == idf[3]

    def test_friend_idf_decreases_with_degree(self, dataset):
        idf = friend_idf(dataset)
        assert idf[2] < idf[3]  # user 2 has degree 3, user 3 degree 1
        assert idf[4] == idf.max()

    def test_top_neighbours_prefers_rare_items(self, dataset):
        tables = tfidf_top_neighbours(dataset, top_h=1)
        # User 0 interacted with popular item 0 and rare item 1.
        assert tables.items[0, 0] == 1

    def test_random_variant_is_seedable(self, dataset):
        first = random_top_neighbours(dataset, 2, seed=1)
        second = random_top_neighbours(dataset, 2, seed=1)
        np.testing.assert_array_equal(first.items, second.items)


class TestBipartite:
    def test_interaction_matrix(self, dataset):
        matrix = interaction_matrix(dataset)
        assert matrix.shape == (5, 4)
        assert matrix[0, 0] == 1
        assert matrix[4].sum() == 0

    def test_normalized_propagation_rows_sum_to_one(self, dataset):
        user_to_item, item_to_user = normalized_propagation(interaction_matrix(dataset))
        sums = np.asarray(user_to_item.sum(axis=1)).ravel()
        for user in range(4):  # users with interactions
            assert sums[user] == pytest.approx(1.0)
        assert sums[4] == 0.0

    def test_propagate_embeddings_moves_toward_neighbours(self, dataset):
        matrix = interaction_matrix(dataset)
        users = np.zeros((5, 2))
        items = np.ones((4, 2))
        new_users, __ = propagate_embeddings(matrix, users, items, rounds=1, mix=0.5)
        np.testing.assert_allclose(new_users[0], [0.5, 0.5])
        np.testing.assert_allclose(new_users[4], [0.0, 0.0])

    def test_propagate_validates_mix(self, dataset):
        matrix = interaction_matrix(dataset)
        with pytest.raises(ValueError):
            propagate_embeddings(matrix, np.zeros((5, 2)), np.zeros((4, 2)), mix=2.0)


class TestCloseness:
    def test_direct_connection(self, dataset):
        closeness = direct_connection(dataset)
        matrix = closeness(np.array([0, 1, 3]))
        assert matrix[0, 1] and matrix[1, 0]
        assert not matrix[0, 2]
        assert not matrix.diagonal().any()

    def test_common_neighbours_extends_direct(self, dataset):
        closeness = common_neighbours(dataset, minimum_common=1)
        # Users 0 and 3 are not direct friends but share neighbour 2.
        matrix = closeness(np.array([0, 3]))
        assert matrix[0, 1]

    def test_full_attention(self):
        matrix = full_attention()(np.array([5, 6, 7]))
        assert matrix.all()

    def test_pagerank_threshold_enables_influential_columns(self, dataset):
        closeness = pagerank_threshold(dataset, quantile=0.4)
        matrix = closeness(np.array([0, 2, 4]))
        # User 2 is the highest-degree node; attention toward it should
        # be enabled from everyone in the group.
        assert matrix[:, 1].all()

    def test_pagerank_scores_sum_to_one(self, dataset):
        from repro.graphs.closeness import _pagerank

        scores = _pagerank(social_adjacency(dataset))
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert scores[2] == scores.max()  # highest degree
