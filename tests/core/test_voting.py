"""Voting network: social masking, padding, gating, aggregation."""

import numpy as np

from repro.autograd import Tensor
from repro.core import GroupSAConfig
from repro.core.voting import GroupAggregation, VotingLayer, VotingNetwork
from repro.nn import social_bias_matrix


CONFIG = GroupSAConfig(
    embedding_dim=8,
    key_dim=6,
    value_dim=6,
    ffn_hidden=8,
    attention_hidden=8,
    dropout=0.0,
    num_attention_layers=2,
)


def batch_inputs(rng, batch=3, length=4, dim=8):
    x = Tensor(rng.normal(size=(batch, length, dim)), requires_grad=True)
    adjacency = rng.random((batch, length, length)) > 0.4
    adjacency = adjacency | adjacency.transpose(0, 2, 1)
    mask = np.ones((batch, length), dtype=bool)
    return x, adjacency, mask


class TestVotingLayer:
    def test_output_shape(self, rng):
        layer = VotingLayer(CONFIG, rng=rng)
        x, adjacency, mask = batch_inputs(rng)
        bias = social_bias_matrix(adjacency, member_mask=mask)
        out, weights = layer(x, bias)
        assert out.shape == x.shape
        assert weights.shape == (3, 4, 4)

    def test_social_mask_respected(self, rng):
        layer = VotingLayer(CONFIG, rng=rng)
        x, __, mask = batch_inputs(rng)
        adjacency = np.zeros((3, 4, 4), dtype=bool)  # no social edges
        bias = social_bias_matrix(adjacency, member_mask=mask)
        __, weights = layer(x, bias)
        # With no edges, each member can only attend to itself.
        np.testing.assert_allclose(
            weights.data, np.broadcast_to(np.eye(4), (3, 4, 4)), atol=1e-9
        )


class TestVotingNetwork:
    def test_identity_at_initialization(self, rng):
        network = VotingNetwork(CONFIG, rng=rng)
        x, adjacency, mask = batch_inputs(rng)
        out, __ = network(x, adjacency, mask)
        # ReZero gate starts at 0 => output == input.
        np.testing.assert_allclose(out.data, x.data)

    def test_gate_learns(self, rng):
        network = VotingNetwork(CONFIG, rng=rng)
        x, adjacency, mask = batch_inputs(rng)
        out, __ = network(x, adjacency, mask)
        (out * out).sum().backward()
        assert network.gate.grad is not None

    def test_disabled_passthrough(self, rng):
        config = CONFIG.variant(use_self_attention=False)
        network = VotingNetwork(config, rng=rng)
        x, adjacency, mask = batch_inputs(rng)
        out, weights = network(x, adjacency, mask)
        assert out is x
        assert weights is None

    def test_zero_layers_passthrough(self, rng):
        network = VotingNetwork(CONFIG.variant(num_attention_layers=0), rng=rng)
        x, adjacency, mask = batch_inputs(rng)
        out, weights = network(x, adjacency, mask)
        assert out is x

    def test_layer_count(self, rng):
        network = VotingNetwork(CONFIG.variant(num_attention_layers=3), rng=rng)
        assert len(network.layers) == 3

    def test_returns_last_layer_attention(self, rng):
        network = VotingNetwork(CONFIG, rng=rng)
        x, adjacency, mask = batch_inputs(rng)
        __, weights = network(x, adjacency, mask)
        assert weights.shape == (3, 4, 4)
        np.testing.assert_allclose(weights.sum(axis=-1), np.ones((3, 4)))


class TestGroupAggregation:
    def test_output_shapes(self, rng):
        aggregation = GroupAggregation(CONFIG, rng=rng)
        members = Tensor(rng.normal(size=(2, 4, 8)))
        items = Tensor(rng.normal(size=(2, 8)))
        mask = np.ones((2, 4), dtype=bool)
        group, gamma = aggregation(members, items, mask)
        assert group.shape == (2, 8)
        assert gamma.shape == (2, 4)

    def test_gamma_ignores_padding(self, rng):
        aggregation = GroupAggregation(CONFIG, rng=rng)
        members = Tensor(rng.normal(size=(1, 4, 8)))
        items = Tensor(rng.normal(size=(1, 8)))
        mask = np.array([[True, True, False, False]])
        __, gamma = aggregation(members, items, mask)
        assert np.all(gamma.data[0, 2:] < 1e-9)
        assert gamma.data.sum() == 1.0 or abs(gamma.data.sum() - 1.0) < 1e-9

    def test_identity_at_initialization(self, rng):
        aggregation = GroupAggregation(CONFIG, rng=rng)
        members = Tensor(rng.normal(size=(2, 3, 8)))
        items = Tensor(rng.normal(size=(2, 8)))
        mask = np.ones((2, 3), dtype=bool)
        group, gamma = aggregation(members, items, mask)
        manual = np.einsum("bl,bld->bd", gamma.data, members.data)
        np.testing.assert_allclose(group.data, manual, atol=1e-10)

    def test_gamma_varies_with_item(self, rng):
        # Expertise weighting: different target items should induce
        # different member weights once the scorer is non-degenerate.
        aggregation = GroupAggregation(CONFIG, rng=rng)
        members = Tensor(rng.normal(size=(1, 4, 8)))
        mask = np.ones((1, 4), dtype=bool)
        __, gamma_a = aggregation(members, Tensor(rng.normal(size=(1, 8))), mask)
        __, gamma_b = aggregation(members, Tensor(rng.normal(size=(1, 8))), mask)
        assert not np.allclose(gamma_a.data, gamma_b.data)
