"""Model introspection utilities."""

import numpy as np
import pytest

from repro.analysis import (
    attention_heatmap_text,
    dominant_member,
    embedding_neighbours,
    member_weight_profile,
    voting_rounds_trace,
)


class TestVotingTrace:
    def test_one_trace_per_layer(self, trained_tiny_model):
        model, batcher, __ = trained_tiny_model
        batch = batcher.batch([0, 1])
        traces = voting_rounds_trace(model, batch)
        assert len(traces) == model.config.num_attention_layers
        for trace in traces:
            assert trace.shape == (2, batch.members.shape[1], batch.members.shape[1])
            np.testing.assert_allclose(trace.sum(axis=-1), 1.0, atol=1e-8)

    def test_no_self_attention_variant_empty(self, tiny_split):
        from repro.core import GroupSA
        from repro.data import GroupBatcher
        from tests.conftest import TINY_MODEL_CONFIG

        config = TINY_MODEL_CONFIG.variant(
            use_self_attention=False,
            use_item_aggregation=False,
            use_social_aggregation=False,
        )
        train = tiny_split.train
        model = GroupSA(train.num_users, train.num_items, config)
        batcher = GroupBatcher(train)
        assert voting_rounds_trace(model, batcher.batch([0])) == []


class TestHeatmap:
    def test_renders_all_labels(self):
        weights = np.array([[0.9, 0.1], [0.5, 0.5]])
        text = attention_heatmap_text(weights, labels=["u1", "u2"])
        assert "u1" in text and "u2" in text
        assert len(text.splitlines()) == 3

    def test_extreme_values_use_ramp_ends(self):
        text = attention_heatmap_text(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert "@" in text and " " in text

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            attention_heatmap_text(np.zeros((2, 3)))

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            attention_heatmap_text(np.zeros((2, 2)), labels=["only-one"])


class TestEmbeddingNeighbours:
    def test_finds_identical_vector(self):
        table = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        neighbours = embedding_neighbours(table, 0, k=2)
        assert neighbours[0][0] == 1
        assert neighbours[0][1] == pytest.approx(1.0)

    def test_excludes_self(self):
        table = np.eye(4)
        neighbours = embedding_neighbours(table, 2, k=3)
        assert 2 not in [index for index, __ in neighbours]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            embedding_neighbours(np.eye(3), 5)

    def test_zero_rows_safe(self):
        table = np.zeros((3, 4))
        table[0, 0] = 1.0
        neighbours = embedding_neighbours(table, 0, k=2)
        assert len(neighbours) == 2


class TestWeightProfiles:
    def test_profile_zeroes_padding(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model
        sizes = tiny_split.train.group_sizes()
        group = int(np.argmin(sizes))
        batch = batcher.batch([group])
        profile = member_weight_profile(model, batch, np.array([0]))
        assert np.all(profile[0, sizes[group]:] == 0.0)

    def test_dominant_member_is_a_member(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model
        batch = batcher.batch([0, 1, 2])
        dominant = dominant_member(model, batch, np.array([0, 1, 2]))
        for group, user in zip([0, 1, 2], dominant):
            assert user in tiny_split.train.group_members[group]
