"""Serving-time recommendation for ad-hoc member lists."""

import numpy as np
import pytest

from repro.core import AdhocGroupRecommender, build_adhoc_batch


class TestBuildAdhocBatch:
    def test_padding_and_mask(self, tiny_split):
        friend_sets = tiny_split.train.friend_set()
        batch = build_adhoc_batch([[0, 1, 2], [3, 4]], friend_sets)
        assert batch.members.shape == (2, 3)
        np.testing.assert_array_equal(batch.mask[0], [1, 1, 1])
        np.testing.assert_array_equal(batch.mask[1], [1, 1, 0])

    def test_duplicates_removed(self, tiny_split):
        friend_sets = tiny_split.train.friend_set()
        batch = build_adhoc_batch([[5, 5, 5, 7]], friend_sets)
        assert batch.mask[0].sum() == 2

    def test_adjacency_matches_social_network(self, tiny_split):
        dataset = tiny_split.train
        friend_sets = dataset.friend_set()
        # Find one real friendship pair.
        user = next(u for u, fs in enumerate(friend_sets) if fs)
        friend = next(iter(friend_sets[user]))
        members = sorted({user, friend})
        batch = build_adhoc_batch([members], friend_sets)
        assert batch.adjacency[0, 0, 1]
        assert batch.adjacency[0, 1, 0]

    def test_group_ids_are_sentinel(self, tiny_split):
        batch = build_adhoc_batch([[0, 1]], tiny_split.train.friend_set())
        assert (batch.group_ids == -1).all()

    def test_empty_rejected(self, tiny_split):
        friend_sets = tiny_split.train.friend_set()
        with pytest.raises(ValueError):
            build_adhoc_batch([], friend_sets)
        with pytest.raises(ValueError):
            build_adhoc_batch([[]], friend_sets)


class TestAdhocRecommender:
    @pytest.fixture
    def recommender(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        return AdhocGroupRecommender(model, tiny_split.train)

    def test_score_shapes(self, recommender):
        scores = recommender.score([0, 1, 2], np.arange(7))
        assert scores.shape == (7,)
        assert np.isfinite(scores).all()

    def test_recommend_returns_k(self, recommender):
        top = recommender.recommend([0, 1, 2], k=4)
        assert len(top) == 4
        assert len(set(top.tolist())) == 4

    def test_recommend_excludes_member_history(self, recommender, tiny_split):
        members = [0, 1]
        history = set()
        for member in members:
            history |= tiny_split.train.user_items()[member]
        top = recommender.recommend(members, k=10)
        assert not set(top.tolist()) & history

    def test_recommend_without_exclusion(self, recommender):
        top = recommender.recommend([0, 1], k=5, exclude_member_history=False)
        assert len(top) == 5

    def test_matches_dataset_group_scoring(self, recommender, trained_tiny_model, tiny_split):
        # Scoring the member list of a real group ad-hoc must equal
        # scoring the group through the batcher (same members, same
        # adjacency -> same forward pass).
        model, batcher, __ = trained_tiny_model
        group = 0
        members = tiny_split.train.group_members[group].tolist()
        items = np.arange(5)
        adhoc = recommender.score(members, items)
        batch = batcher.batch(np.zeros(5, dtype=np.int64))
        via_batcher = model.score_group_items(batch, items)
        np.testing.assert_allclose(adhoc, via_batcher, atol=1e-9)

    def test_voting_weights_distribution(self, recommender):
        weights = recommender.voting_weights([0, 1, 2], item_id=0)
        assert weights.shape == (3,)
        assert weights.sum() == pytest.approx(1.0, abs=1e-8)
