"""User modeling: item/social aggregation, fusion, variants."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import GroupSAConfig
from repro.core.user_modeling import UserModeling
from repro.data.loaders import TopNeighbours


CONFIG = GroupSAConfig(
    embedding_dim=8,
    attention_hidden=8,
    fusion_hidden=(8,),
    top_h=3,
    dropout=0.0,
)


@pytest.fixture
def tables(rng):
    num_users, top_h = 10, 3
    return TopNeighbours(
        items=rng.integers(0, 12, size=(num_users, top_h)),
        item_mask=np.ones((num_users, top_h), dtype=bool),
        friends=rng.integers(0, 10, size=(num_users, top_h)),
        friend_mask=np.ones((num_users, top_h), dtype=bool),
    )


class TestUserModeling:
    def test_output_shape(self, rng, tables):
        module = UserModeling(10, 12, CONFIG, rng=rng)
        users = np.array([0, 3, 7])
        embeddings = Tensor(rng.normal(size=(3, 8)))
        out = module(embeddings, users, tables)
        assert out.shape == (3, 8)

    def test_output_nonnegative(self, rng, tables):
        # Eq. (19) ends in a ReLU.
        module = UserModeling(10, 12, CONFIG, rng=rng)
        out = module(Tensor(rng.normal(size=(4, 8))), np.arange(4), tables)
        assert (out.data >= 0).all()

    def test_item_factor_lookup(self, rng):
        module = UserModeling(10, 12, CONFIG, rng=rng)
        factor = module.item_factor(np.array([0, 5]))
        np.testing.assert_array_equal(factor.data, module.item_latent.weight.data[[0, 5]])

    def test_item_only_variant(self, rng, tables):
        config = CONFIG.variant(use_social_aggregation=False)
        module = UserModeling(10, 12, config, rng=rng)
        out = module(Tensor(rng.normal(size=(2, 8))), np.array([0, 1]), tables)
        assert out.shape == (2, 8)
        assert not hasattr(module, "social_attention")

    def test_social_only_variant(self, rng, tables):
        config = CONFIG.variant(use_item_aggregation=False)
        module = UserModeling(10, 12, config, rng=rng)
        out = module(Tensor(rng.normal(size=(2, 8))), np.array([0, 1]), tables)
        assert out.shape == (2, 8)
        assert not hasattr(module, "item_attention")

    def test_both_disabled_rejected(self, rng):
        config = CONFIG.variant(
            use_item_aggregation=False, use_social_aggregation=False
        )
        with pytest.raises(ValueError):
            UserModeling(10, 12, config, rng=rng)

    def test_gradients_flow_to_latent_tables(self, rng, tables):
        module = UserModeling(10, 12, CONFIG, rng=rng)
        out = module(Tensor(rng.normal(size=(3, 8))), np.array([0, 1, 2]), tables)
        out.sum().backward()
        assert module.item_latent.weight.grad is not None
        assert module.social_latent.weight.grad is not None

    def test_masked_neighbours_do_not_matter(self, rng):
        # Two users with identical valid top-H rows but different padded
        # slots must get identical latent factors.
        module = UserModeling(10, 12, CONFIG, rng=rng)
        items = np.array([[1, 2, 3], [1, 2, 9]])
        item_mask = np.array([[True, True, False], [True, True, False]])
        friends = np.array([[0, 1, 4], [0, 1, 8]])
        friend_mask = np.array([[True, True, False], [True, True, False]])
        tables = TopNeighbours(items, item_mask, friends, friend_mask)
        embedding = Tensor(rng.normal(size=(1, 8)))
        both = Tensor(np.vstack([embedding.data, embedding.data]))
        out = module(both, np.array([0, 0]), tables)
        np.testing.assert_allclose(out.data[0], out.data[1], atol=1e-9)
