"""Prediction towers and the fast group recommendation path."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import FastGroupRecommender, STRATEGIES
from repro.core.fast import (
    average_strategy,
    least_misery_strategy,
    maximum_satisfaction_strategy,
)
from repro.core.prediction import PredictionTower
from repro.data import GroupBatcher


class TestPredictionTower:
    def test_output_shape(self, rng):
        tower = PredictionTower(8, (8,), rng=rng)
        out = tower(Tensor(rng.normal(size=(5, 8))), Tensor(rng.normal(size=(5, 8))))
        assert out.shape == (5,)

    def test_uses_product_pathway(self, rng):
        # Scores must not be invariant to sign flips of both inputs if
        # only concatenation were used they could be; the product term
        # makes score(a, b) != score(-a, b) in general.
        tower = PredictionTower(4, (8,), rng=rng)
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(3, 4)))
        assert not np.allclose(tower(a, b).data, tower(-a, b).data)

    def test_gradients(self, rng):
        tower = PredictionTower(4, (6,), rng=rng)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        tower(a, Tensor(rng.normal(size=(3, 4)))).sum().backward()
        assert a.grad is not None

    def test_no_hidden_layer(self, rng):
        tower = PredictionTower(4, (), rng=rng)
        out = tower(Tensor(rng.normal(size=(2, 4))), Tensor(rng.normal(size=(2, 4))))
        assert out.shape == (2,)


class TestStrategies:
    def setup_method(self):
        self.scores = np.array([[1.0, 3.0, 2.0], [5.0, -1.0, 0.0]])
        self.mask = np.array([[True, True, True], [True, True, False]])

    def test_average(self):
        out = average_strategy(self.scores, self.mask)
        np.testing.assert_allclose(out, [2.0, 2.0])

    def test_least_misery(self):
        out = least_misery_strategy(self.scores, self.mask)
        np.testing.assert_allclose(out, [1.0, -1.0])

    def test_maximum_satisfaction(self):
        out = maximum_satisfaction_strategy(self.scores, self.mask)
        np.testing.assert_allclose(out, [3.0, 5.0])

    def test_padding_excluded(self):
        scores = np.array([[1.0, 100.0]])
        mask = np.array([[True, False]])
        assert average_strategy(scores, mask)[0] == 1.0
        assert maximum_satisfaction_strategy(scores, mask)[0] == 1.0
        assert least_misery_strategy(scores, mask)[0] == 1.0

    def test_registry(self):
        assert set(STRATEGIES) == {"avg", "lm", "ms"}


class TestFastGroupRecommender:
    def test_scores_match_manual_average(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model
        fast = FastGroupRecommender(model, "avg")
        batch = batcher.batch([0])
        items = np.array([1])
        fast_score = fast.score_group_items(batch, items)[0]
        members = tiny_split.train.group_members[0]
        member_scores = model.score_user_items(
            members, np.full(members.size, 1, dtype=np.int64)
        )
        assert fast_score == pytest.approx(member_scores.mean(), abs=1e-9)

    def test_unknown_strategy_rejected(self, trained_tiny_model):
        model, __, __h = trained_tiny_model
        with pytest.raises(ValueError):
            FastGroupRecommender(model, "median")

    def test_callable_strategy(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model

        def first_member(scores, mask):
            return scores[:, 0]

        fast = FastGroupRecommender(model, first_member)
        assert fast.strategy_name == "first_member"
        batch = batcher.batch([0, 1])
        assert fast.score_group_items(batch, np.array([0, 1])).shape == (2,)

    def test_strategies_differ_on_real_model(self, trained_tiny_model):
        model, batcher, __ = trained_tiny_model
        batch = batcher.batch([0, 1, 2, 3])
        items = np.arange(4)
        avg = FastGroupRecommender(model, "avg").score_group_items(batch, items)
        lm = FastGroupRecommender(model, "lm").score_group_items(batch, items)
        ms = FastGroupRecommender(model, "ms").score_group_items(batch, items)
        assert np.all(lm <= avg + 1e-12)
        assert np.all(avg <= ms + 1e-12)
