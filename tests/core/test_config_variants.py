"""GroupSAConfig validation and the named ablation variants."""

import pytest

from repro.core import GroupSAConfig, VARIANTS, variant_config


class TestConfig:
    def test_defaults_follow_paper(self):
        config = GroupSAConfig()
        assert config.embedding_dim == 32
        assert config.key_dim == 32
        assert config.blend_weight == 0.9
        assert config.dropout == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupSAConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            GroupSAConfig(blend_weight=1.5)
        with pytest.raises(ValueError):
            GroupSAConfig(num_attention_layers=-1)
        with pytest.raises(ValueError):
            GroupSAConfig(top_h=0)
        with pytest.raises(ValueError):
            GroupSAConfig(dtype="float16")

    def test_dtype_defaults_to_float64(self):
        assert GroupSAConfig().dtype == "float64"
        assert GroupSAConfig(dtype="float32").dtype == "float32"

    def test_variant_copies(self):
        base = GroupSAConfig()
        changed = base.variant(num_attention_layers=3)
        assert changed.num_attention_layers == 3
        assert base.num_attention_layers == 1

    def test_uses_user_modeling(self):
        assert GroupSAConfig().uses_user_modeling
        assert not GroupSAConfig(
            use_item_aggregation=False, use_social_aggregation=False
        ).uses_user_modeling


class TestVariants:
    def test_all_paper_variants_present(self):
        assert set(VARIANTS) == {
            "GroupSA",
            "Group-A",
            "Group-S",
            "Group-I",
            "Group-F",
            "Group-G",
        }

    def test_group_a_removes_voting_and_user_modeling(self):
        config = variant_config("Group-A", GroupSAConfig())
        assert not config.use_self_attention
        assert not config.uses_user_modeling

    def test_group_s_removes_self_attention_only(self):
        config = variant_config("Group-S", GroupSAConfig())
        assert not config.use_self_attention
        assert config.uses_user_modeling

    def test_group_i_removes_item_aggregation(self):
        config = variant_config("Group-I", GroupSAConfig())
        assert not config.use_item_aggregation
        assert config.use_social_aggregation

    def test_group_f_removes_social_aggregation(self):
        config = variant_config("Group-F", GroupSAConfig())
        assert config.use_item_aggregation
        assert not config.use_social_aggregation

    def test_group_g_removes_user_task(self):
        config = variant_config("Group-G", GroupSAConfig())
        assert not config.use_user_task

    def test_groupsa_unchanged(self):
        base = GroupSAConfig()
        assert variant_config("GroupSA", base) == base

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            variant_config("Group-Z", GroupSAConfig())
