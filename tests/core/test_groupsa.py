"""GroupSA model surface: scoring, variants, attention extraction."""

import numpy as np
import pytest

from repro.core import GroupSA, GroupSAConfig
from repro.data import GroupBatcher
from repro.graphs import tfidf_top_neighbours
from tests.conftest import TINY_MODEL_CONFIG


class TestConstruction:
    def test_components_follow_config(self, tiny_split):
        train = tiny_split.train
        model = GroupSA(train.num_users, train.num_items, TINY_MODEL_CONFIG)
        assert model.user_modeling is not None
        assert model.voting.enabled

    def test_group_a_has_no_user_modeling(self, tiny_split):
        train = tiny_split.train
        config = TINY_MODEL_CONFIG.variant(
            use_self_attention=False,
            use_item_aggregation=False,
            use_social_aggregation=False,
        )
        model = GroupSA(train.num_users, train.num_items, config)
        assert model.user_modeling is None
        assert not model.voting.enabled

    def test_missing_tables_raise(self, tiny_split):
        train = tiny_split.train
        model = GroupSA(train.num_users, train.num_items, TINY_MODEL_CONFIG)
        with pytest.raises(RuntimeError, match="TopNeighbours"):
            model.user_scores(np.array([0]), np.array([0]))

    def test_seeded_construction_deterministic(self, tiny_split):
        train = tiny_split.train
        first = GroupSA(train.num_users, train.num_items, TINY_MODEL_CONFIG)
        second = GroupSA(train.num_users, train.num_items, TINY_MODEL_CONFIG)
        np.testing.assert_array_equal(
            first.user_embedding.weight.data, second.user_embedding.weight.data
        )


class TestScoring:
    @pytest.fixture
    def model(self, tiny_split):
        train = tiny_split.train
        model = GroupSA(train.num_users, train.num_items, TINY_MODEL_CONFIG)
        model.set_top_neighbours(tfidf_top_neighbours(train, TINY_MODEL_CONFIG.top_h))
        return model

    def test_user_scores_shape(self, model):
        scores = model.user_scores(np.array([0, 1, 2]), np.array([3, 4, 5]))
        assert scores.shape == (3,)

    def test_group_scores_shape(self, model, tiny_split):
        batcher = GroupBatcher(tiny_split.train)
        batch = batcher.batch([0, 1])
        scores = model.group_scores(batch, np.array([0, 1]))
        assert scores.shape == (2,)

    def test_score_user_items_numpy(self, model):
        scores = model.score_user_items(np.array([0, 1]), np.array([0, 1]))
        assert isinstance(scores, np.ndarray)
        assert scores.shape == (2,)

    def test_score_group_items_chunked(self, model, tiny_split):
        batcher = GroupBatcher(tiny_split.train)
        groups = np.zeros(10, dtype=np.int64)
        items = np.arange(10)
        batch = batcher.batch(groups)
        full = model.score_group_items(batch, items, chunk=3)
        one = model.score_group_items(batch, items, chunk=100)
        np.testing.assert_allclose(full, one)

    def test_blend_weight_zero_skips_user_modeling(self, tiny_split):
        train = tiny_split.train
        config = TINY_MODEL_CONFIG.variant(blend_weight=0.0)
        model = GroupSA(train.num_users, train.num_items, config)
        # No tables set, but w^u == 0 means the latent path is unused.
        scores = model.user_scores(np.array([0]), np.array([0]))
        assert scores.shape == (1,)

    def test_blend_weight_one_uses_latent_only(self, tiny_split, rng):
        train = tiny_split.train
        config = TINY_MODEL_CONFIG.variant(blend_weight=1.0)
        model = GroupSA(train.num_users, train.num_items, config)
        model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
        scores = model.user_scores(np.array([0, 1]), np.array([0, 1]))
        assert scores.shape == (2,)

    def test_member_attention_sums_to_one(self, model, tiny_split):
        batcher = GroupBatcher(tiny_split.train)
        batch = batcher.batch([0, 1, 2])
        gamma = model.member_attention(batch, np.array([0, 1, 2]))
        np.testing.assert_allclose(gamma.sum(axis=1), np.ones(3), atol=1e-9)

    def test_padded_members_get_zero_attention(self, model, tiny_split):
        batcher = GroupBatcher(tiny_split.train)
        sizes = tiny_split.train.group_sizes()
        small_group = int(np.argmin(sizes))
        batch = batcher.batch([small_group])
        gamma = model.member_attention(batch, np.array([0]))
        size = sizes[small_group]
        assert np.all(gamma[0, size:] < 1e-9)

    def test_eval_scoring_is_deterministic(self, model):
        users, items = np.array([0, 1, 2]), np.array([1, 2, 3])
        first = model.score_user_items(users, items)
        second = model.score_user_items(users, items)
        np.testing.assert_array_equal(first, second)


class TestTrainedModel:
    def test_training_reduces_loss(self, trained_tiny_model):
        __, __, history = trained_tiny_model
        user_losses = history.losses("user")
        assert user_losses[-1] < user_losses[0]

    def test_trained_model_scores_finite(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model
        scores = model.score_user_items(np.arange(5), np.arange(5))
        assert np.isfinite(scores).all()
        batch = batcher.batch([0, 1])
        assert np.isfinite(model.score_group_items(batch, np.array([0, 1]))).all()
