"""Tracer: span trees, sampling rules, JSONL log, Chrome export."""

import json
import threading
import time

import pytest

from repro.obs import is_report
from repro.obs.spans import (
    SPAN_SCHEMA,
    Tracer,
    _NOOP,
    capture_context,
    current_span,
    record_span,
    span,
    tracing_enabled,
    use_span,
)
from repro.obs.trace import span_chrome_events, write_span_chrome_trace


def assert_well_formed(spans):
    """Every span's parent exists in its trace; parent chains terminate."""
    by_trace = {}
    for item in spans:
        by_trace.setdefault(item.trace_id, {})[item.span_id] = item
    for members in by_trace.values():
        roots = [s for s in members.values() if s.parent_id is None]
        assert len(roots) == 1
        for item in members.values():
            seen = set()
            cursor = item
            while cursor.parent_id is not None:
                assert cursor.span_id not in seen, "cycle in span tree"
                seen.add(cursor.span_id)
                assert cursor.parent_id in members, "dangling parent"
                cursor = members[cursor.parent_id]


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything", k=1) is _NOOP
        with span("anything") as live:
            assert live is None
        assert current_span() is None
        assert capture_context() is None
        # record_span with no tracer is a silent no-op.
        record_span("late", None, 0.0, 0.1)


class TestSpanTrees:
    def test_nesting_follows_context(self):
        with Tracer(seed=0) as tracer:
            with span("root", k=5) as root:
                with span("child") as child:
                    with span("grandchild") as grandchild:
                        assert current_span() is grandchild
                    assert current_span() is child
                assert child.parent_id == root.span_id
        spans = tracer.finished_spans()
        assert [s.name for s in sorted(spans, key=lambda s: s.start)] == [
            "root",
            "child",
            "grandchild",
        ]
        assert_well_formed(spans)
        assert all(s.trace_id == root.trace_id for s in spans)

    def test_sibling_traces_are_separate(self):
        with Tracer(seed=0) as tracer:
            with span("first"):
                pass
            with span("second"):
                pass
        assert len(tracer.traces()) == 2

    def test_attrs_and_set_attr(self):
        with Tracer(seed=0) as tracer:
            with span("op", batch_size=4) as live:
                live.set_attr("hit", True)
        recorded = tracer.finished_spans()[0]
        assert recorded.attrs["batch_size"] == 4
        assert recorded.attrs["hit"] is True

    def test_cross_thread_reparenting(self):
        with Tracer(seed=0) as tracer:
            with span("request") as root:
                captured = capture_context()
                assert captured is root

                def worker():
                    # Fresh thread context: nothing current here...
                    assert current_span() is None
                    # ...until the captured request span is adopted.
                    with use_span(captured):
                        with span("worker.stage"):
                            pass
                    record_span("wait", captured, time.perf_counter(), 0.005)

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        spans = tracer.finished_spans()
        names = {s.name for s in spans}
        assert names == {"request", "worker.stage", "wait"}
        assert_well_formed(spans)
        stage = next(s for s in spans if s.name == "worker.stage")
        assert stage.parent_id == root.span_id

    def test_record_span_preserves_duration(self):
        with Tracer(seed=0) as tracer:
            with span("root") as root:
                record_span("wait", root, time.perf_counter() - 0.25, 0.25, queued=3)
        wait = next(s for s in tracer.finished_spans() if s.name == "wait")
        assert wait.duration == 0.25
        assert wait.attrs["queued"] == 3


class TestSampling:
    def test_head_sampling_drops_unlucky_traces(self):
        with Tracer(sample_rate=0.0, seed=0) as tracer:
            with span("root"):
                pass
        assert tracer.finished_spans() == []
        summary = tracer.summary()
        assert summary["traces_started"] == 1
        assert summary["traces_dropped"] == 1

    def test_slow_requests_always_kept(self):
        with Tracer(sample_rate=0.0, slow_ms=1.0, seed=0) as tracer:
            with span("fast"):
                pass
            with span("slow"):
                time.sleep(0.01)
        traces = tracer.traces()
        assert len(traces) == 1
        (spans,) = traces.values()
        assert spans[0].name == "slow"
        assert spans[0].attrs["sampled"] == "slow"
        assert tracer.summary()["kept_slow"] == 1

    def test_errored_requests_always_kept(self):
        with Tracer(sample_rate=0.0, seed=0) as tracer:
            with pytest.raises(RuntimeError):
                with span("root"):
                    with span("inner"):
                        raise RuntimeError("boom")
        spans = tracer.finished_spans()
        assert {s.name for s in spans} == {"root", "inner"}
        inner = next(s for s in spans if s.name == "inner")
        assert inner.status == "error"
        assert "boom" in inner.error
        root = next(s for s in spans if s.name == "root")
        assert root.attrs["sampled"] == "error"

    def test_auto_slow_p99_rule(self):
        tracer = Tracer(
            sample_rate=0.0,
            auto_slow_quantile=99.0,
            auto_slow_min_samples=50,
            seed=0,
        )

        def finish_root(name, duration):
            # Deterministic durations: begin a root and backdate its
            # start so _end measures exactly `duration`.
            root = tracer._begin(name, None, {})
            root.start = time.perf_counter() - duration
            tracer._end(root, None)

        with tracer:
            # Strictly decreasing fast latencies (2ms → 1ms): every root
            # after the warm-up is below the rolling p99 of its history.
            for index in range(100):
                finish_root("fast", 0.002 - index * 1e-5)
            finish_root("outlier", 0.05)
        kept = [s.name for s in tracer.finished_spans()]
        assert kept == ["outlier"]
        assert tracer.summary()["kept_slow"] == 1

    def test_only_one_tracer_at_a_time(self):
        with Tracer(seed=0):
            with pytest.raises(RuntimeError):
                Tracer(seed=1).install()


class TestExport:
    def test_jsonl_span_log(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with Tracer(seed=0, jsonl_path=str(path)) as tracer:
            with span("root", k=2):
                with span("child"):
                    pass
        tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert all(line["schema"] == SPAN_SCHEMA for line in lines)
        by_name = {line["name"]: line for line in lines}
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["root"]["attrs"]["k"] == 2
        assert by_name["root"]["dur_ms"] >= 0.0

    def test_chrome_trace_export(self, tmp_path):
        with Tracer(seed=0) as tracer:
            with span("alpha"):
                with span("beta"):
                    pass
            with span("gamma"):
                pass
        events = span_chrome_events(tracer.finished_spans())
        assert len(events) == 3
        assert {event["ph"] for event in events} == {"X"}
        # Two traces, two tracks.
        assert {event["tid"] for event in events} == {0, 1}
        path = tmp_path / "trace.json"
        assert write_span_chrome_trace(tracer, str(path)) == 3
        document = json.loads(path.read_text())
        assert document["otherData"]["producer"] == "repro.obs.spans"
        assert len(document["traceEvents"]) == 3

    def test_report_envelope(self):
        with Tracer(seed=0) as tracer:
            with span("root"):
                pass
        report = tracer.report(meta={"host": "test"})
        assert is_report(report)
        assert report["kind"] == "span_log"
        assert report["data"]["traces_kept"] == 1


class TestBounds:
    def test_active_trace_eviction(self):
        # Roots that never finish are evicted once the in-flight buffer
        # overflows, so leaked traces cannot grow memory unboundedly.
        with Tracer(seed=0, max_active_traces=4) as tracer:
            roots = [tracer._begin(f"leaky-{i}", None, {}) for i in range(8)]
            assert tracer.summary()["active_evicted"] == 4
            # Finishing an evicted root is a counted orphan, not a crash.
            for root in roots:
                tracer._end(root, None)
            summary = tracer.summary()
            assert summary["orphan_spans"] == 4
            assert summary["traces_kept"] == 4

    def test_finished_span_cap(self):
        with Tracer(seed=0, max_finished_spans=3) as tracer:
            for index in range(5):
                with span(f"root-{index}"):
                    pass
        assert len(tracer.finished_spans()) == 3
        assert tracer.summary()["spans_dropped"] == 2
