"""Concurrency guarantees of the observability core.

Two hot paths race in production: fleet scrapes run
``MetricsRegistry.merge`` + ``exposition`` while request threads keep
writing instruments, and the router's gather thread adopts remote
worker spans into the same Tracer other request threads are writing.
These tests hammer both and assert nothing tears.
"""

import json
import threading

from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.spans import RemoteSpanRecorder, Tracer, adopt_remote_spans, span
from repro.obs.timeseries import TimeSeriesStore


def _run(workers, duration=0.2):
    stop = threading.Event()
    errors = []

    def wrap(fn):
        def loop():
            try:
                while not stop.is_set():
                    fn()
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        return loop

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    stop.wait(duration)
    stop.set()
    for thread in threads:
        thread.join()
    return errors


class TestScrapeWhileMerge:
    def test_exposition_and_sampling_race_merges(self):
        target = MetricsRegistry()
        store = TimeSeriesStore()
        merges = []

        def merge():
            source = MetricsRegistry()
            source.counter("requests").inc(10)
            source.histogram("latency").observe(0.01)
            source.histogram("latency").observe(2.0)
            source.gauge("version").set(1.0)
            target.merge(source)
            merges.append(1)

        def scrape():
            text = target.exposition()
            # A torn histogram would break cumulativity or lose the
            # trailing +Inf line.
            for line in text.splitlines():
                if line.startswith("repro_latency_bucket"):
                    assert "le=" in line
            target.payload()
            store.sample_registry(target)

        errors = _run([merge, merge, scrape, scrape])
        assert errors == []
        assert target.counter("requests").value == 10 * len(merges)
        assert target.histogram("latency").count == 2 * len(merges)
        exposition = target.exposition()
        assert exposition.count('le="+Inf"') == 1

    def test_concurrent_observe_while_exposing(self):
        registry = MetricsRegistry()

        def observe():
            registry.histogram("lat").observe(0.005)
            registry.counter("hits").inc()

        def expose():
            registry.exposition()
            registry.payload()

        assert _run([observe, observe, observe, expose]) == []
        assert registry.histogram("lat").count == registry.counter("hits").value


class TestSpanLogConcurrency:
    def test_router_and_worker_style_writers_share_one_tracer(self, tmp_path):
        """N request threads + a thread adopting remote payloads, all
        appending to one JSONL span log: every line must parse and every
        kept trace must keep its parentage intact."""
        log = tmp_path / "spans.jsonl"
        with Tracer(sample_rate=1.0, jsonl_path=str(log)) as tracer:

            def request():
                with span("router.scatter", kind="user") as scatter:
                    recorder = RemoteSpanRecorder()
                    with recorder.span("worker.score", proc="worker-x"):
                        with recorder.span("shard.topk"):
                            pass
                    if scatter is not None:
                        adopt_remote_spans(scatter, recorder.payload())
                    with span("router.merge"):
                        pass

            errors = _run([request] * 4)
            assert errors == []
        records = [
            json.loads(line) for line in log.read_text().splitlines()
        ]
        assert records, "no spans were kept"
        by_trace = {}
        for record in records:
            assert record["schema"] == "repro.obs/span/v1"
            by_trace.setdefault(record["trace_id"], []).append(record)
        for trace in by_trace.values():
            names = {record["name"] for record in trace}
            assert names == {
                "router.scatter", "worker.score", "shard.topk", "router.merge",
            }
            ids = {record["span_id"] for record in trace}
            root = [r for r in trace if r["parent_id"] is None]
            assert len(root) == 1
            for record in trace:
                if record["parent_id"] is not None:
                    assert record["parent_id"] in ids
        summary = tracer.summary()
        assert summary["traces_kept"] == len(by_trace)
        assert summary["orphan_spans"] == 0
