"""Observability must not perturb training.

The subsystem's acceptance property: a `fit_groupsa` run executed under
the full observability stack — op profiler with module scopes, backward
timing, RunMetrics callback, gradient health monitor — produces final
weights bit-identical to a bare run from the same seed.  Dropout is
enabled so the test would catch any extra RNG consumption too.
"""

import dataclasses

import numpy as np

from repro.obs import GradientHealthMonitor, OpProfiler, RunMetrics, attach_scopes
from repro.training import TrainingConfig
from repro.training.two_stage import build_model, fit_groupsa
from tests.conftest import TINY_MODEL_CONFIG

#: Dropout > 0 exercises the per-module RNG streams during training.
MODEL_CONFIG = dataclasses.replace(TINY_MODEL_CONFIG, dropout=0.1)

TRAINING = TrainingConfig(
    user_epochs=2,
    group_epochs=3,
    batch_size=64,
    learning_rate=0.02,
    seed=11,
    interleave_user_every=2,
)


def _assert_bit_exact(state, reference):
    assert set(state) == set(reference)
    for name in reference:
        np.testing.assert_array_equal(state[name], reference[name])


def test_profiled_run_is_bit_identical(tiny_split, tmp_path):
    bare_model, bare_batcher = build_model(tiny_split, MODEL_CONFIG)
    bare_history = fit_groupsa(bare_model, tiny_split, bare_batcher, TRAINING)
    reference = bare_model.state_dict()

    model, batcher = build_model(tiny_split, MODEL_CONFIG)
    attach_scopes(model, root="groupsa")
    metrics = RunMetrics(str(tmp_path / "run.jsonl"))
    monitor = GradientHealthMonitor()
    with OpProfiler() as profiler:
        history = fit_groupsa(
            model,
            tiny_split,
            batcher,
            TRAINING,
            callback=metrics,
            grad_monitor=monitor,
        )
    metrics.close()

    _assert_bit_exact(model.state_dict(), reference)

    # Same losses epoch for epoch, too — not just the same endpoint.
    assert [log.loss for log in history.epochs] == [
        log.loss for log in bare_history.epochs
    ]

    # And the instrumentation actually ran: ops were attributed to
    # model scopes, metrics streamed, gradients were checked.
    scopes = {stat.scope for stat in profiler.stats()}
    assert any(scope.startswith("groupsa.") for scope in scopes)
    assert len(metrics.records) == len(history.epochs)
    assert monitor.checks > 0


def test_profiler_off_leaves_no_residue(tiny_split):
    """After a profiled run, a fresh unprofiled run matches a run that
    never saw a profiler (the patches fully unwind)."""
    model_a, batcher_a = build_model(tiny_split, MODEL_CONFIG)
    with OpProfiler():
        pass  # enter/exit only
    fit_groupsa(model_a, tiny_split, batcher_a, TRAINING)

    model_b, batcher_b = build_model(tiny_split, MODEL_CONFIG)
    fit_groupsa(model_b, tiny_split, batcher_b, TRAINING)
    _assert_bit_exact(model_a.state_dict(), model_b.state_dict())
