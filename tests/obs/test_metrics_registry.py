"""MetricsRegistry: exact counts, bounded-error quantiles, exposition."""

import json
import threading

import numpy as np
import pytest

from repro.obs import is_report, make_serving_report
from repro.obs.metrics_registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_histograms,
)


class TestCountersAndGauges:
    def test_counter_monotonic(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(2.5)
        gauge.add(0.5)
        assert gauge.value == 3.0

    def test_registry_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        registry.counter("a").inc(2)
        assert registry.payload()["counters"]["a"] == 2


class TestHistogram:
    def test_exact_count_sum_max_min(self):
        histogram = Histogram("lat")
        for value in (0.001, 0.002, 0.003, 0.004, 0.1):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(0.11)
        assert histogram.max == 0.1
        assert histogram.min == 0.001
        assert histogram.mean() == pytest.approx(0.022)

    def test_percentile_returns_recorded_values(self):
        histogram = Histogram("lat")
        for value in (0.001, 0.002, 0.003, 0.004, 0.1):
            histogram.observe(value)
        # Nearest-rank semantics over the full history; the returned
        # value is the max recorded sample of the rank bucket, so with
        # well-separated samples it is exact.
        assert histogram.percentile(50) == 0.003
        assert histogram.percentile(99) == 0.1

    def test_percentile_error_bound_100k_skewed(self):
        histogram = Histogram("lat")
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-5.0, sigma=2.5, size=100_000)
        for value in samples:
            histogram.observe(float(value))
        ordered = np.sort(samples)
        for q in (50, 90, 99, 99.9):
            rank = int(round(q / 100.0 * (samples.size - 1)))
            exact = float(ordered[rank])
            got = histogram.percentile(q)
            assert abs(got - exact) <= exact * histogram.relative_error + 1e-12

    def test_under_and_overflow(self):
        histogram = Histogram("lat", lo=1e-3, hi=1.0)
        histogram.observe(1e-6)
        histogram.observe(50.0)
        assert histogram.count == 2
        assert histogram.max == 50.0
        assert histogram.percentile(99) == 50.0

    def test_merge_is_lossless(self):
        left, right = Histogram("a"), Histogram("b")
        rng = np.random.default_rng(1)
        left_samples = rng.lognormal(-5.0, 1.0, size=5000)
        right_samples = rng.lognormal(-4.0, 1.5, size=7000)
        for value in left_samples:
            left.observe(float(value))
        for value in right_samples:
            right.observe(float(value))
        merged = merge_histograms([left, right])
        combined = Histogram("c")
        for value in np.concatenate([left_samples, right_samples]):
            combined.observe(float(value))
        assert merged.count == combined.count
        assert merged.sum == pytest.approx(combined.sum)
        assert merged.max == combined.max
        for q in (50, 90, 99):
            assert merged.percentile(q) == combined.percentile(q)

    def test_merge_rejects_different_layouts(self):
        with pytest.raises(ValueError):
            Histogram("a").merge(Histogram("b", lo=1e-3))


class TestConcurrency:
    def test_hammer_counters_and_histograms_exact(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 5000

        def spin(seed: int) -> None:
            histogram = registry.histogram("lat")
            counter = registry.counter("n")
            for index in range(per_thread):
                counter.inc()
                histogram.observe(1e-4 * ((seed + index) % 100 + 1))

        workers = [
            threading.Thread(target=spin, args=(seed,)) for seed in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert registry.counter("n").value == threads * per_thread
        histogram = registry.histogram("lat")
        assert histogram.count == threads * per_thread
        # Sum is an exact float accumulation of identical per-thread
        # workloads; allow only float-addition ordering noise.
        expected = threads * sum(1e-4 * (i % 100 + 1) for i in range(per_thread))
        assert histogram.sum == pytest.approx(expected, rel=1e-9)


class TestExport:
    def test_payload_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("requests.user").inc(3)
        registry.gauge("resident_blocks").set(4)
        registry.histogram("engine.request").observe(0.002)
        payload = json.loads(json.dumps(registry.payload()))
        assert payload["counters"]["requests.user"] == 3
        assert payload["gauges"]["resident_blocks"] == 4.0
        assert payload["histograms"]["engine.request"]["count"] == 1

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("requests.user").inc(3)
        registry.histogram("engine.request").observe(0.002)
        registry.histogram("engine.request").observe(0.004)
        text = registry.exposition()
        assert "# TYPE repro_requests_user_total counter" in text
        assert "repro_requests_user_total 3" in text
        assert "# TYPE repro_engine_request histogram" in text
        assert 'repro_engine_request_bucket{le="+Inf"} 2' in text
        assert "repro_engine_request_count 2" in text
        # Cumulative bucket counts are monotone non-decreasing.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_engine_request_bucket")
        ]
        assert counts == sorted(counts)

    def test_exposition_overflow_bucket_emits_single_inf_line(self):
        # Regression: a sample above ``hi`` lands in the overflow
        # (+Inf) bucket; the loop used to emit it *and* the trailing
        # unconditional +Inf line — two series with the same label set,
        # invalid Prometheus text format.
        registry = MetricsRegistry()
        histogram = registry.histogram("slow", lo=1e-3, hi=1.0)
        histogram.observe(0.5)
        histogram.observe(50.0)  # overflow
        text = registry.exposition()
        inf_lines = [
            line
            for line in text.splitlines()
            if line.startswith('repro_slow_bucket{le="+Inf"}')
        ]
        assert inf_lines == ['repro_slow_bucket{le="+Inf"} 2']

    def test_histogram_state_round_trip(self):
        original = Histogram("lat")
        rng = np.random.default_rng(3)
        for value in rng.lognormal(-5.0, 1.5, size=2000):
            original.observe(float(value))
        clone = Histogram.from_state(original.state())
        assert clone.count == original.count
        assert clone.sum == original.sum
        assert clone.max == original.max
        assert clone.min == original.min
        for q in (50, 90, 99):
            assert clone.percentile(q) == original.percentile(q)
        # A restored histogram keeps observing and merging losslessly —
        # it is a live instrument, not a frozen snapshot.
        clone.observe(1.0)
        assert clone.count == original.count + 1

    def test_empty_histogram_state_round_trip(self):
        clone = Histogram.from_state(Histogram("lat").state())
        assert clone.count == 0
        assert clone.min == Histogram("lat").min
        clone.observe(0.25)  # still live: first observation sets min
        assert clone.min == 0.25

    def test_histogram_state_rejects_layout_mismatch(self):
        state = Histogram("lat").state()
        state["counts"] = state["counts"][:-1]
        with pytest.raises(ValueError):
            Histogram.from_state(state)

    def test_registry_state_round_trip_and_merge(self):
        # The cluster path: a worker registry crosses a process
        # boundary as state() and merges into the router's exactly.
        worker = MetricsRegistry()
        worker.counter("req").inc(7)
        worker.gauge("items").set(25.0)
        for value in (0.001, 0.004, 0.2):
            worker.histogram("lat").observe(value)
        state = json.loads(json.dumps(worker.state()))  # wire-safe
        restored = MetricsRegistry.from_state(state)
        assert restored.counter("req").value == 7
        assert restored.gauge("items").value == 25.0
        assert restored.histogram("lat").count == 3
        assert restored.histogram("lat").percentile(99) == worker.histogram(
            "lat"
        ).percentile(99)

        router = MetricsRegistry()
        router.counter("req").inc(1)
        router.histogram("lat").observe(0.5)
        router.merge(restored)
        assert router.counter("req").value == 8
        assert router.histogram("lat").count == 4

    def test_registry_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n").inc(2)
        right.counter("n").inc(3)
        right.histogram("lat").observe(0.5)
        left.merge(right)
        assert left.counter("n").value == 5
        assert left.histogram("lat").count == 1

    def test_report_envelopes(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        report = registry.report(meta={"worker": 0})
        assert is_report(report)
        assert report["kind"] == "metrics_registry"
        serving = make_serving_report(registry=registry, meta={"worker": 0})
        assert is_report(serving)
        assert serving["kind"] == "serving"
        assert serving["data"]["metrics"]["counters"]["n"] == 1
        assert "repro_n_total 1" in serving["data"]["exposition"]
