"""Observability × row-sparse gradients.

The contract: monitors and profilers must understand
:class:`RowSparseGrad` *without* materializing the dense table — the
whole point of the sparse path is that nothing on the hot loop is
O(table rows).
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.autograd import RowSparseGrad, sparse_grads
from repro.nn.embedding import Embedding
from repro.obs import GradientHealthMonitor, OpProfiler
from repro.obs.grad_health import GradientHealthError
from repro.obs.run_metrics import RunMetrics


@pytest.fixture
def no_densify(monkeypatch):
    """Make any accidental densification inside obs code an error."""

    def boom(self):
        raise AssertionError("observability densified a RowSparseGrad")

    monkeypatch.setattr(RowSparseGrad, "to_dense", boom)


def _param_with_sparse_grad(values):
    values = np.asarray(values, dtype=float)
    param = SimpleNamespace(
        grad=RowSparseGrad(
            indices=np.arange(len(values), dtype=np.int64),
            values=values,
            shape=(1000, values.shape[1]),
        )
    )
    return param


class TestGradHealth:
    def test_clean_sparse_grad_passes(self, no_densify):
        monitor = GradientHealthMonitor()
        param = _param_with_sparse_grad([[0.5, -0.25]])
        assert monitor.check([("table", param)]) == []

    def test_nan_in_sparse_rows_detected(self, no_densify):
        monitor = GradientHealthMonitor(on_nonfinite="raise")
        param = _param_with_sparse_grad([[0.5, float("nan")]])
        with pytest.raises(GradientHealthError, match="nan"):
            monitor.check([("table", param)])

    def test_inf_in_sparse_rows_detected(self, no_densify):
        monitor = GradientHealthMonitor(on_nonfinite="warn")
        param = _param_with_sparse_grad([[float("inf"), 1.0]])
        with pytest.warns(RuntimeWarning, match="inf"):
            issues = monitor.check([("table", param)])
        assert [issue.kind for issue in issues] == ["inf"]

    def test_vanishing_judged_on_touched_rows(self, no_densify):
        """The implicit zero rows must NOT count as vanishing signal."""
        monitor = GradientHealthMonitor(
            on_vanishing="warn", vanish_threshold=1e-6
        )
        param = _param_with_sparse_grad([[0.5, 0.5]])
        assert monitor.check([("table", param)]) == []


class TestRunMetricsGradNorm:
    def test_sparse_norm_uses_touched_rows_only(self, no_densify):
        metrics = RunMetrics(track_update_ratio=False)
        sparse = _param_with_sparse_grad([[3.0, 4.0]])
        dense = SimpleNamespace(grad=np.array([2.0]))
        metrics._trainer = SimpleNamespace(
            optimizer=SimpleNamespace(parameters=[sparse, dense])
        )
        norm = metrics._grad_norm()
        assert norm == pytest.approx(np.sqrt(3.0**2 + 4.0**2 + 2.0**2))


class TestProfilerSeesSparseGathers:
    def test_gather_and_sparse_backward_attributed(self):
        table = Embedding(500, 8, rng=np.random.default_rng(0))
        with OpProfiler() as profiler:
            with profiler.scope("train"):
                with sparse_grads():
                    out = table(np.array([3, 7, 3]))
                    (out * out).sum().backward()
        assert isinstance(table.weight.grad, RowSparseGrad)
        stats = {(s.name, s.cat) for s in profiler.stats()}
        assert ("gather", "op") in stats
        # The sparse scatter (gather's backward closure) is timed and
        # attributed like any other backward.
        assert ("gather", "backward") in stats

    def test_profiled_sparse_grad_identical_to_unprofiled(self):
        def grad_once():
            table = Embedding(50, 4, rng=np.random.default_rng(1))
            with sparse_grads():
                out = table(np.array([1, 2, 1]))
                (out * out).sum().backward()
            return table.weight.grad

        plain = grad_once()
        with OpProfiler():
            profiled = grad_once()
        np.testing.assert_array_equal(profiled.indices, plain.indices)
        np.testing.assert_array_equal(profiled.values, plain.values)
