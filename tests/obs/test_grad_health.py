"""Gradient health monitor: detection, actions, trainer integration."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.obs import GradientHealthError, GradientHealthMonitor
from repro.training import TrainingConfig
from repro.training.two_stage import build_model, fit_groupsa
from tests.conftest import TINY_MODEL_CONFIG


def _param(grad):
    parameter = Parameter(np.zeros_like(grad, dtype=float))
    parameter.grad = np.asarray(grad, dtype=float)
    return parameter


class TestDetection:
    def test_nan_raises_by_default(self):
        monitor = GradientHealthMonitor()
        with pytest.raises(GradientHealthError, match="nan gradient in 'w'"):
            monitor.check([("w", _param([1.0, np.nan]))], context="unit")
        assert monitor.counts["nan"] == 1

    def test_inf_raises_by_default(self):
        monitor = GradientHealthMonitor()
        with pytest.raises(GradientHealthError, match="inf gradient"):
            monitor.check([("w", _param([np.inf, 0.0]))])

    def test_warn_action(self):
        monitor = GradientHealthMonitor(on_nonfinite="warn")
        with pytest.warns(RuntimeWarning, match="nan gradient"):
            issues = monitor.check([("w", _param([np.nan]))])
        assert [issue.kind for issue in issues] == ["nan"]

    def test_ignore_action_only_counts(self):
        monitor = GradientHealthMonitor(on_nonfinite="ignore")
        monitor.check([("w", _param([np.nan]))])
        assert monitor.counts["nan"] == 1
        assert monitor.issues[0].parameter == "w"

    def test_vanishing_threshold(self):
        monitor = GradientHealthMonitor(
            on_vanishing="warn", vanish_threshold=1e-6
        )
        with pytest.warns(RuntimeWarning, match="vanishing gradient"):
            monitor.check([("tiny", _param([1e-9])), ("ok", _param([0.1]))])
        assert monitor.counts["vanishing"] == 1

    def test_vanishing_disabled_by_default(self):
        monitor = GradientHealthMonitor()
        assert monitor.check([("zero", _param([0.0]))]) == []

    def test_absent_gradient_is_not_vanishing(self):
        monitor = GradientHealthMonitor(
            on_vanishing="raise", vanish_threshold=1e-3
        )
        parameter = Parameter(np.zeros(3))
        assert parameter.grad is None
        assert monitor.check([("unused", parameter)]) == []

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            GradientHealthMonitor(on_nonfinite="explode")
        with pytest.raises(ValueError):
            GradientHealthMonitor(vanish_threshold=-1.0)

    def test_summary_rolls_up(self):
        monitor = GradientHealthMonitor(on_nonfinite="ignore")
        monitor.check([("a", _param([np.nan])), ("b", _param([0.5]))])
        summary = monitor.summary()
        assert summary["checks"] == 1
        assert summary["counts"]["nan"] == 1
        assert "a" in summary["last_issues"][0]


class TestTrainerIntegration:
    def test_healthy_run_checks_every_step(self, tiny_split):
        monitor = GradientHealthMonitor()
        training = TrainingConfig(
            user_epochs=1, group_epochs=1, batch_size=64, seed=5
        )
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        fit_groupsa(
            model, tiny_split, batcher, training, grad_monitor=monitor
        )
        assert monitor.checks > 0
        assert monitor.issues == []

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_poisoned_weights_abort_the_run(self, tiny_split):
        training = TrainingConfig(
            user_epochs=1, group_epochs=1, batch_size=64, seed=5
        )
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        # NaN weights propagate into every gradient they touch.
        model.item_embedding.weight.data[...] = np.nan
        with pytest.raises(GradientHealthError):
            fit_groupsa(
                model,
                tiny_split,
                batcher,
                training,
                grad_monitor=GradientHealthMonitor(),
            )
