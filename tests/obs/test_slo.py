"""SLO specs, multi-window burn rates, transition-based alerting."""

import pytest

from repro.obs.alerts import AlertLog
from repro.obs.slo import SLOMonitor, SLOSpec
from repro.obs.timeseries import TimeSeriesStore


def latency_spec(**overrides):
    defaults = dict(
        name="p99-latency",
        series="request.p99",
        threshold=0.05,
        direction="above",
        budget=0.2,
        windows=(10.0, 40.0),
        min_samples=2,
    )
    defaults.update(overrides)
    return SLOSpec(**defaults)


class TestSpecValidation:
    def test_rejects_bad_direction_budget_severity(self):
        with pytest.raises(ValueError):
            latency_spec(direction="sideways")
        with pytest.raises(ValueError):
            latency_spec(budget=0.0)
        with pytest.raises(ValueError):
            latency_spec(severity="panic")
        with pytest.raises(ValueError):
            latency_spec(windows=())

    def test_breach_directions(self):
        assert latency_spec().breaches(0.06)
        assert not latency_spec().breaches(0.05)
        floor = latency_spec(direction="below", threshold=0.5)
        assert floor.breaches(0.4)
        assert not floor.breaches(0.5)

    def test_monitor_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            SLOMonitor(TimeSeriesStore(), [latency_spec(), latency_spec()])


class TestBurnRates:
    def _store(self, values, now=100.0):
        store = TimeSeriesStore()
        for i, value in enumerate(values):
            store.record("request.p99", value, ts=now - len(values) + 1 + i)
        return store

    def test_healthy_series_not_burning(self):
        store = self._store([0.01] * 20)
        monitor = SLOMonitor(store, [latency_spec()])
        (status,) = monitor.evaluate(now=100.0)
        assert not status.burning
        assert monitor.alerts.events() == []

    def test_sustained_breach_burns_all_windows(self):
        store = self._store([0.2] * 20)
        monitor = SLOMonitor(store, [latency_spec()])
        (status,) = monitor.evaluate(now=100.0)
        assert status.burning
        # breach fraction 1.0 over budget 0.2 => burn rate 5 everywhere.
        assert status.burn_rates[10.0] == pytest.approx(5.0)
        assert status.burn_rates[40.0] == pytest.approx(5.0)

    def test_short_blip_does_not_burn_long_window(self):
        # 38 healthy samples then 2 slow ones: the short window burns,
        # the long window stays inside budget -> no alert.
        store = self._store([0.01] * 38 + [0.2] * 2)
        monitor = SLOMonitor(store, [latency_spec()])
        (status,) = monitor.evaluate(now=100.0)
        # 11 points land in the trailing-10s window (inclusive cutoff).
        assert status.burn_rates[10.0] == pytest.approx((2 / 11) / 0.2)
        assert status.burn_rates[40.0] < 1.0
        assert not status.burning
        assert monitor.alerts.events() == []

    def test_empty_window_is_not_burning(self):
        monitor = SLOMonitor(TimeSeriesStore(), [latency_spec()])
        (status,) = monitor.evaluate(now=100.0)
        assert not status.burning
        assert status.burn_rates == {10.0: None, 40.0: None}


class TestTransitions:
    def test_exactly_one_breach_and_one_recovery_event(self):
        store = TimeSeriesStore()
        alerts = AlertLog()
        monitor = SLOMonitor(store, [latency_spec()], alerts=alerts)
        for i in range(20):
            store.record("request.p99", 0.2, ts=50.0 + i)
        # Repeated evaluation of a sustained breach: one event only.
        for __ in range(5):
            monitor.evaluate(now=70.0)
        breaches = alerts.events(kind="slo_breach")
        assert len(breaches) == 1
        assert breaches[0].source == "p99-latency"
        assert breaches[0].severity == "page"
        # Recovery: healthy samples wash the windows out.
        for i in range(60):
            store.record("request.p99", 0.01, ts=71.0 + i)
        for __ in range(3):
            monitor.evaluate(now=131.0)
        assert len(alerts.events(kind="slo_recovered")) == 1
        assert len(alerts.events(kind="slo_breach")) == 1

    def test_hit_rate_floor_direction_below(self):
        store = TimeSeriesStore()
        alerts = AlertLog()
        spec = SLOSpec(
            name="cache-floor",
            series="hit_rate",
            threshold=0.5,
            direction="below",
            budget=0.3,
            windows=(10.0,),
            min_samples=2,
            severity="warn",
        )
        monitor = SLOMonitor(store, [spec], alerts=alerts)
        for i in range(10):
            store.record("hit_rate", 0.1, ts=90.0 + i)
        (status,) = monitor.evaluate(now=100.0)
        assert status.burning
        assert alerts.events(kind="slo_breach")[0].severity == "warn"

    def test_payload_json_ready(self):
        import json

        store = TimeSeriesStore()
        for i in range(10):
            store.record("request.p99", 0.2, ts=90.0 + i)
        monitor = SLOMonitor(store, [latency_spec()])
        payload = json.loads(json.dumps(monitor.payload(now=100.0)))
        assert payload["specs"] == 1
        assert payload["burning"] == 1
        assert payload["status"][0]["name"] == "p99-latency"
