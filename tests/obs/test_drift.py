"""Drift detectors: PSI math, transitions, degradation and trend."""

import numpy as np
import pytest

from repro.obs.alerts import AlertLog
from repro.obs.drift import (
    GradientTrendDetector,
    RateDegradationDetector,
    ScoreDistributionDetector,
    psi,
)
from repro.obs.timeseries import TimeSeriesStore


class TestPsi:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(size=4000)
        assert psi(sample[:2000], sample[2000:]) < 0.02

    def test_shifted_distribution_large(self):
        rng = np.random.default_rng(1)
        reference = rng.normal(0.0, 1.0, size=2000)
        shifted = rng.normal(2.0, 1.0, size=2000)
        assert psi(reference, shifted) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            psi(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            psi(np.array([1.0]), np.array([1.0]), bins=1)


class TestScoreDistributionDetector:
    def test_no_reference_no_alert(self):
        detector = ScoreDistributionDetector(min_samples=10)
        alerts = AlertLog()
        detector.observe(np.zeros(5))
        status = detector.evaluate(alerts)
        assert status["psi"] is None
        assert alerts.events() == []

    def test_freeze_reference_if_ready(self):
        detector = ScoreDistributionDetector(min_samples=10)
        detector.observe(np.arange(5))
        assert not detector.freeze_reference_if_ready()
        detector.observe(np.arange(10))
        assert detector.freeze_reference_if_ready()
        assert detector.has_reference
        # Buffer cleared: reference and current never overlap.
        assert detector.evaluate()["current_samples"] == 0

    def test_drift_transition_fires_once_then_recovers(self):
        rng = np.random.default_rng(2)
        detector = ScoreDistributionDetector(
            min_samples=100, window=400, threshold=0.25
        )
        alerts = AlertLog()
        detector.set_reference(rng.normal(0.0, 1.0, size=1000))
        # Stable scores: no drift.
        detector.observe(rng.normal(0.0, 1.0, size=400))
        assert not detector.evaluate(alerts)["drifted"]
        # Shifted scores flood the rolling window: drift, exactly once.
        detector.observe(rng.normal(3.0, 1.0, size=400))
        for __ in range(4):
            status = detector.evaluate(alerts)
        assert status["drifted"]
        drift_events = alerts.events(kind="drift")
        assert len(drift_events) == 1
        assert drift_events[0].details["psi"] >= 0.25
        # Scores return to baseline: one recovery event.
        detector.observe(rng.normal(0.0, 1.0, size=400))
        detector.evaluate(alerts)
        assert len(alerts.events(kind="drift_recovered")) == 1


class TestRateDegradationDetector:
    def _store(self, values, now=100.0):
        store = TimeSeriesStore()
        for i, value in enumerate(values):
            store.record("hit_rate", value, ts=now - len(values) + 1 + i)
        return store

    def test_healthy_rate_silent(self):
        detector = RateDegradationDetector("cache", "hit_rate", floor=0.5)
        alerts = AlertLog()
        status = detector.evaluate(self._store([0.9] * 10), alerts, now=100.0)
        assert not status["degraded"]
        assert alerts.events() == []

    def test_degradation_fires_once_and_recovers(self):
        detector = RateDegradationDetector("cache", "hit_rate", floor=0.5)
        alerts = AlertLog()
        store = self._store([0.2] * 10)
        for __ in range(3):
            detector.evaluate(store, alerts, now=100.0)
        assert len(alerts.events(kind="degradation")) == 1
        healthy = self._store([0.9] * 10, now=300.0)
        detector.evaluate(healthy, alerts, now=300.0)
        assert len(alerts.events(kind="degradation_recovered")) == 1

    def test_too_few_samples_silent(self):
        detector = RateDegradationDetector(
            "cache", "hit_rate", floor=0.5, min_samples=5
        )
        alerts = AlertLog()
        status = detector.evaluate(self._store([0.1] * 2), alerts, now=100.0)
        assert not status["degraded"]
        assert alerts.events() == []


class TestGradientTrendDetector:
    def _store(self, values, now=100.0):
        store = TimeSeriesStore()
        for i, value in enumerate(values):
            store.record("grad", value, ts=now - len(values) + 1 + i)
        return store

    def test_flat_series_silent(self):
        detector = GradientTrendDetector(series="grad", growth_ratio=2.0)
        alerts = AlertLog()
        status = detector.evaluate(self._store([1.0] * 12), alerts, now=100.0)
        assert not status["trending"]
        assert status["ratio"] == pytest.approx(1.0)

    def test_explosive_growth_alerts_once(self):
        detector = GradientTrendDetector(series="grad", growth_ratio=2.0)
        alerts = AlertLog()
        store = self._store([1.0] * 6 + [10.0] * 6)
        for __ in range(3):
            status = detector.evaluate(store, alerts, now=100.0)
        assert status["trending"]
        assert len(alerts.events(kind="trend")) == 1

    def test_zero_baseline_does_not_divide(self):
        detector = GradientTrendDetector(series="grad", growth_ratio=2.0)
        status = detector.evaluate(
            self._store([0.0] * 6 + [5.0] * 6), AlertLog(), now=100.0
        )
        assert status["ratio"] is None
        assert not status["trending"]


class TestAlertLog:
    def test_bounded_and_filterable(self):
        alerts = AlertLog(max_events=3)
        for i in range(5):
            alerts.emit("drift", f"s{i}", "warn", "m", ts=float(i))
        assert len(alerts) == 3
        payload = alerts.payload()
        assert payload["dropped"] == 2
        assert payload["by_kind"] == {"drift": 3}
        assert [e.source for e in alerts.events(source="s4")] == ["s4"]

    def test_jsonl_stream(self, tmp_path):
        import json

        path = tmp_path / "alerts.jsonl"
        alerts = AlertLog(jsonl_path=str(path))
        alerts.emit("slo_breach", "p99", "page", "burning", ts=1.0, latest=0.2)
        alerts.close()
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["schema"] == "repro.obs/alert/v1"
        assert record["details"]["latest"] == 0.2

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            AlertLog().emit("drift", "s", "catastrophic", "m")
