"""OpProfiler unit tests: patching lifecycle, scopes, FLOPs, traces."""

import json

import numpy as np
import pytest

from repro.autograd.tensor import Tensor, concatenate, stack, where
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.obs import OpProfiler, attach_scopes
from repro.obs.flops import estimate_flops, matmul_flops
from repro.obs.trace import chrome_trace_events, format_top_table, write_chrome_trace


def _stat(profiler, name, cat="op", scope=None):
    rows = [
        s
        for s in profiler.stats()
        if s.name == name and s.cat == cat and (scope is None or s.scope == scope)
    ]
    assert rows, f"no {cat} stat recorded for '{name}' (scope={scope})"
    assert len(rows) == 1
    return rows[0]


class TestPatchingLifecycle:
    def test_methods_untouched_when_inactive(self):
        """Zero disabled overhead: the class holds the original functions."""
        originals = {
            "__matmul__": Tensor.__matmul__,
            "__add__": Tensor.__add__,
            "softmax": Tensor.softmax,
            "_concatenate": Tensor.__dict__["_concatenate"].__func__,
        }
        call_original = Module.__call__
        with OpProfiler():
            assert Tensor.__matmul__ is not originals["__matmul__"]
            assert Module.__call__ is not call_original
        assert Tensor.__matmul__ is originals["__matmul__"]
        assert Tensor.__add__ is originals["__add__"]
        assert Tensor.softmax is originals["softmax"]
        assert Tensor.__dict__["_concatenate"].__func__ is originals["_concatenate"]
        assert Module.__call__ is call_original

    def test_restored_after_exception(self):
        original = Tensor.__matmul__
        with pytest.raises(RuntimeError, match="boom"):
            with OpProfiler():
                raise RuntimeError("boom")
        assert Tensor.__matmul__ is original

    def test_profilers_do_not_nest(self):
        with OpProfiler():
            with pytest.raises(RuntimeError, match="already active"):
                OpProfiler().__enter__()

    def test_nothing_recorded_outside_context(self):
        profiler = OpProfiler()
        with profiler:
            pass
        a = Tensor(np.ones((3, 3)), requires_grad=True)
        (a @ a).sum().backward()
        assert profiler.stats() == []


class TestRecording:
    def test_counts_and_bytes(self):
        a = Tensor(np.ones((8, 4)))
        b = Tensor(np.ones((4, 8)))
        with OpProfiler() as prof:
            out = a @ b
            out = out + 1.0
        stat = _stat(prof, "matmul")
        assert stat.calls == 1
        assert stat.bytes_in == a.data.nbytes + b.data.nbytes
        assert stat.bytes_out == out.data.nbytes
        assert stat.total_s > 0.0
        assert _stat(prof, "add").calls == 1

    def test_free_functions_recorded_via_any_import_site(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((2, 3)))
        with OpProfiler() as prof:
            concatenate([a, b], axis=0)
            stack((t for t in (a, b)), axis=0)  # generator argument
            where(np.ones((2, 3), dtype=bool), a, b)
        assert _stat(prof, "concatenate").calls == 1
        stacked = _stat(prof, "stack")
        assert stacked.calls == 1
        assert stacked.bytes_in == a.data.nbytes + b.data.nbytes
        assert _stat(prof, "where").calls == 1

    def test_gather_recorded(self):
        table = Tensor(np.ones((10, 4)), requires_grad=True)
        with OpProfiler() as prof:
            table[np.array([1, 2, 2])]
        assert _stat(prof, "gather").calls == 1

    def test_backward_closures_timed(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with OpProfiler() as prof:
            (a @ a).relu().sum().backward()
        assert _stat(prof, "matmul", cat="backward").calls == 1
        assert _stat(prof, "relu", cat="backward").calls == 1

    def test_record_backward_off(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with OpProfiler(record_backward=False) as prof:
            (a @ a).sum().backward()
        assert all(s.cat != "backward" for s in prof.stats())

    def test_self_time_excludes_nested_ops(self):
        """``mean`` is composite (sum + div): its children are recorded
        and the parent op totals never lose time to double counting."""
        a = Tensor(np.ones((64, 64)))
        with OpProfiler() as prof:
            a.mean(axis=0)
        # mean is not instrumented itself; its constituents are.
        assert _stat(prof, "sum").calls == 1
        assert _stat(prof, "div").calls == 1
        for stat in prof.stats():
            assert stat.self_s <= stat.total_s + 1e-12

    def test_event_cap_keeps_aggregate_exact(self):
        a = Tensor(np.ones(4))
        with OpProfiler(max_events=5) as prof:
            for __ in range(20):
                a + 1.0
        assert len(prof.events) == 5
        assert prof.dropped_events == 15
        assert _stat(prof, "add").calls == 20
        assert prof.totals()["dropped_events"] == 15


class TestScopes:
    def test_explicit_scope_nesting(self):
        a = Tensor(np.ones((2, 2)))
        with OpProfiler() as prof:
            with prof.scope("outer"):
                a + 1.0
                with prof.scope("inner"):
                    a * 2.0
                a - 1.0
            a / 2.0
        assert _stat(prof, "add").scope == "outer"
        assert _stat(prof, "mul").scope == "inner"
        assert _stat(prof, "sub").scope == "outer"
        assert _stat(prof, "div").scope == ""

    def test_module_calls_enter_scopes(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        x = Tensor(np.ones((3, 4)))
        with OpProfiler() as prof:
            layer(x)
        matmul = _stat(prof, "matmul")
        assert matmul.scope == "Linear"

    def test_attach_scopes_qualifies_names(self):
        class Block(Module):
            def __init__(self):
                super().__init__()
                self.proj = Linear(4, 4, rng=np.random.default_rng(0))

            def forward(self, x):
                return self.proj(x)

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.block = Block()

            def forward(self, x):
                return self.block(x)

        net = Net()
        attach_scopes(net, root="net")
        assert net.scope_name() == "net"
        assert net.block.proj.scope_name() == "net.block.proj"
        with OpProfiler() as prof:
            net(Tensor(np.ones((2, 4))))
        assert _stat(prof, "matmul").scope == "net.block.proj"

    def test_backward_attributed_to_creation_scope(self):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with OpProfiler() as prof:
            with prof.scope("fw"):
                out = (a @ a).sum()
            out.backward()  # outside the scope
        assert _stat(prof, "matmul", cat="backward").scope == "fw"


class TestFlops:
    def test_matmul_known_shapes(self):
        assert matmul_flops((4, 8), (4, 16)) == 2 * 4 * 8 * 16
        # batched with broadcast: (3, 5, 7) @ (7, 2) -> (3, 5, 2)
        assert matmul_flops((3, 5, 7), (3, 5, 2)) == 2 * 7 * 3 * 5 * 2

    def test_matmul_recorded_flops(self):
        a = Tensor(np.ones((4, 8)))
        b = Tensor(np.ones((8, 16)))
        with OpProfiler() as prof:
            a @ b
        assert _stat(prof, "matmul").flops == 2 * 4 * 8 * 16

    def test_softmax_estimate(self):
        assert estimate_flops("softmax", ((32, 10),), (32, 10)) == 5 * 320

    def test_data_movement_is_free(self):
        assert estimate_flops("reshape", ((4, 4),), (16,)) == 0
        assert estimate_flops("gather", ((100, 8),), (5, 8)) == 0
        assert estimate_flops("unknown_op", ((4,),), (4,)) == 0


class TestExport:
    def test_chrome_trace_round_trip(self, tmp_path):
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        with OpProfiler() as prof:
            with prof.scope("phase"):
                (a @ a).softmax().sum().backward()
        path = tmp_path / "trace.json"
        written = write_chrome_trace(prof, str(path))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert written == len(events) > 0
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
        names = {event["name"] for event in events}
        assert {"matmul", "softmax", "scope:phase"} <= names
        cats = {event["cat"] for event in events}
        assert {"op", "backward", "scope"} <= cats

    def test_empty_profile_exports_empty_trace(self):
        profiler = OpProfiler()
        with profiler:
            pass
        assert chrome_trace_events(profiler) == []

    def test_top_table_mentions_ops_and_scopes(self):
        a = Tensor(np.ones((16, 16)))
        with OpProfiler() as prof:
            with prof.scope("hot"):
                a @ a
        table = format_top_table(prof.stats(), k=5)
        assert "matmul" in table
        assert "hot" in table
        assert "self_ms" in table.splitlines()[0]
