"""TimeSeriesStore: ring bounds, registry scraping, window queries."""

import threading

from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore


class TestRecording:
    def test_ring_buffer_bounds_samples(self):
        store = TimeSeriesStore(max_samples=4)
        for i in range(10):
            store.record("s", float(i), ts=float(i))
        assert store.points("s") == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]

    def test_series_cap(self):
        store = TimeSeriesStore(max_series=2)
        store.record("a", 1.0)
        store.record("b", 1.0)
        store.record("c", 1.0)  # over cap: dropped, existing unaffected
        assert store.names() == ["a", "b"]
        assert store.payload()["dropped_series"] == 1

    def test_nan_dropped(self):
        store = TimeSeriesStore()
        store.record("s", float("nan"))
        assert store.points("s") == []

    def test_latest(self):
        store = TimeSeriesStore()
        assert store.latest("missing") is None
        store.record("s", 3.0, ts=1.0)
        store.record("s", 7.0, ts=2.0)
        assert store.latest("s") == 7.0


class TestRegistrySampling:
    def test_counters_gauges_histograms_fan_out(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(5)
        registry.gauge("version").set(3.0)
        registry.histogram("latency").observe(0.01)
        registry.histogram("latency").observe(0.03)
        store = TimeSeriesStore()
        points = store.sample_registry(registry, ts=100.0)
        assert points == 2 + 5  # counter + gauge + five histogram keys
        assert store.latest("requests") == 5.0
        assert store.latest("version") == 3.0
        assert store.latest("latency.count") == 2.0
        assert store.latest("latency.p99") is not None
        assert store.latest("latency.mean") is not None

    def test_prefix_namespacing(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1.0)
        store = TimeSeriesStore()
        store.sample_registry(registry, prefix="fleet.")
        assert store.names() == ["fleet.g"]


class TestWindows:
    def _filled(self):
        store = TimeSeriesStore()
        for i in range(10):
            store.record("c", float(i * 2), ts=100.0 + i)  # counter-ish
        return store

    def test_window_trims_by_time(self):
        store = self._filled()
        assert len(store.window("c", 4.0, now=109.0)) == 5
        assert len(store.window("c", 100.0, now=109.0)) == 10
        assert store.window("missing", 10.0, now=109.0) == []

    def test_delta_and_rate(self):
        store = self._filled()
        assert store.delta("c", 100.0, now=109.0) == 18.0
        assert store.rate("c", 100.0, now=109.0) == 2.0
        assert store.delta("c", 0.5, now=109.0) is None  # one point

    def test_payload_round_trips_json(self):
        import json

        store = self._filled()
        payload = json.loads(json.dumps(store.payload(last=3)))
        assert len(payload["series"]["c"]) == 3


class TestThreadSafety:
    def test_concurrent_writers_and_readers(self):
        store = TimeSeriesStore(max_samples=64)
        stop = threading.Event()
        errors = []

        def write(name):
            i = 0
            while not stop.is_set():
                store.record(name, float(i))
                i += 1

        def read():
            while not stop.is_set():
                try:
                    store.payload()
                    store.window("w0", 10.0)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

        threads = [
            threading.Thread(target=write, args=(f"w{i}",)) for i in range(3)
        ] + [threading.Thread(target=read)]
        for thread in threads:
            thread.start()
        stop.wait(0.2)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
