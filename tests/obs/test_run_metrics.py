"""RunMetrics: JSONL schema, trainer binding, the unified report shape."""

import json

import numpy as np
import pytest

from repro.engine.telemetry import Telemetry
from repro.obs import RECORD_SCHEMA, RunMetrics, is_report, make_report
from repro.training import TrainingConfig
from repro.training.callbacks import EpochLog
from repro.training.two_stage import build_model, fit_groupsa
from tests.conftest import TINY_MODEL_CONFIG

SHORT = TrainingConfig(
    user_epochs=2, group_epochs=2, batch_size=64, learning_rate=0.02, seed=5
)

#: Keys every JSONL record must carry.
RECORD_KEYS = {
    "schema",
    "task",
    "epoch",
    "loss",
    "pairwise_accuracy",
    "duration_s",
    "grad_norm",
    "update_ratio",
    "rss_hwm_mb",
    "wall_time_s",
}


@pytest.fixture
def metrics_run(tiny_split, tmp_path):
    path = tmp_path / "run.jsonl"
    metrics = RunMetrics(str(path))
    model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
    history = fit_groupsa(model, tiny_split, batcher, SHORT, callback=metrics)
    metrics.close()
    return metrics, path, history


class TestJsonlSchema:
    def test_one_record_per_epoch_with_full_schema(self, metrics_run):
        metrics, path, history = metrics_run
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(history.epochs)
        for record in lines:
            assert set(record) == RECORD_KEYS
            assert record["schema"] == RECORD_SCHEMA
            assert record["task"] in ("user", "group")
            assert record["duration_s"] > 0.0
            assert np.isfinite(record["loss"])

    def test_round_trip_matches_in_memory_records(self, metrics_run):
        metrics, path, __ = metrics_run
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == json.loads(json.dumps(metrics.records))

    def test_bound_metrics_include_grad_norm_and_ratios(self, metrics_run):
        metrics, __, ___ = metrics_run
        last = metrics.records[-1]
        assert last["grad_norm"] is not None and last["grad_norm"] > 0.0
        ratios = last["update_ratio"]
        # Groups follow the model's top-level parameter prefixes.
        assert {"user_embedding", "item_embedding", "voting"} <= set(ratios)
        assert all(r >= 0.0 for r in ratios.values())
        # Something must have moved during a training epoch.
        assert max(ratios.values()) > 0.0

    def test_rss_high_water_mark_positive_on_posix(self, metrics_run):
        metrics, __, ___ = metrics_run
        rss = metrics.records[-1]["rss_hwm_mb"]
        assert rss is None or rss > 0.0


class TestUnbound:
    def test_usable_as_plain_callback(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        with RunMetrics(str(path)) as metrics:
            metrics(EpochLog("user", 1, 0.5, 0.8, duration_s=0.25))
        record = json.loads(path.read_text())
        assert record["grad_norm"] is None
        assert record["update_ratio"] is None
        assert record["duration_s"] == 0.25

    def test_chain_invoked(self):
        seen = []
        metrics = RunMetrics(None, chain=seen.append)
        log = EpochLog("group", 2, 0.4, 0.9)
        metrics(log)
        assert seen == [log]
        assert len(metrics.records) == 1


class TestUnifiedReportShape:
    def test_run_report_envelope(self, metrics_run):
        metrics, __, ___ = metrics_run
        report = metrics.report(meta={"world": "tiny"})
        assert is_report(report)
        assert report["kind"] == "training_run"
        assert report["meta"] == {"world": "tiny"}
        assert report["data"]["epochs_logged"] == len(metrics.records)
        assert set(report["data"]["tasks"]) == {"user", "group"}
        json.dumps(report)  # must be serializable as-is

    def test_engine_telemetry_shares_the_envelope(self):
        telemetry = Telemetry()
        telemetry.increment("cache.hit")
        with telemetry.time("score"):
            pass
        report = telemetry.report(meta={"engine": "test"})
        assert is_report(report)
        assert report["kind"] == "serving_telemetry"
        assert report["data"] == telemetry.snapshot()

    def test_envelope_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            make_report("", {})
