"""Backward closures must report FLOPs and bytes, not zeros.

The profiler wraps each op's backward closure at creation time; before
the fused-ops work those records carried ``bytes_in = bytes_out =
flops = 0``, which made backward-dominated training profiles look like
pure overhead.  These tests pin the estimates to nonzero values wired
from the forward shapes, for both the op-by-op graphs and the fused
kernels.
"""

import numpy as np

from repro.autograd import Tensor, fused_ops
from repro.obs import OpProfiler
from repro.obs.flops import estimate_backward_flops, estimate_flops


def _backward_rows(profiler):
    return [row for row in profiler.stats() if row.cat == "backward"]


class TestBackwardEstimates:
    def test_matmul_backward_is_twice_forward(self):
        shapes = ((4, 8), (8, 3))
        forward = estimate_flops("matmul", shapes, (4, 3))
        backward = estimate_backward_flops("matmul", shapes, (4, 3))
        assert forward > 0
        assert backward == 2 * forward

    def test_fused_backward_is_twice_forward(self):
        shapes = ((2, 3, 4), (2, 3, 4), (2, 3, 4))
        forward = estimate_flops("masked_attention", shapes, (2, 3, 4))
        backward = estimate_backward_flops("masked_attention", shapes, (2, 3, 4))
        assert forward > 0
        assert backward == 2 * forward

    def test_gather_backward_scatter_adds(self):
        assert estimate_backward_flops("gather", ((100, 8),), (5, 8)) == 40

    def test_data_movement_stays_free(self):
        assert estimate_backward_flops("reshape", ((4, 3),), (12,)) == 0


class TestProfiledBackwardRecords:
    def test_unfused_backward_rows_nonzero(self, rng):
        x = Tensor(rng.normal(size=(8, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        with OpProfiler() as profiler, fused_ops(False):
            ((x @ w).relu().sum()).backward()
        rows = {row.name: row for row in _backward_rows(profiler)}
        assert rows, "no backward rows recorded"
        for name in ("matmul", "relu", "sum"):
            assert rows[name].flops > 0, name
            assert rows[name].bytes_in > 0, name
            assert rows[name].bytes_out > 0, name

    def test_fused_backward_rows_nonzero(self, rng):
        q = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        k = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        with OpProfiler() as profiler:
            out, __ = Tensor._fused_masked_attention(q, k, v, None, 2.0)
            out.sum().backward()
        rows = {row.name: row for row in _backward_rows(profiler)}
        attention = rows["masked_attention"]
        assert attention.flops > 0
        assert attention.bytes_in > 0
        assert attention.bytes_out > 0

    def test_fused_forward_rows_recorded(self, rng):
        # The tuple-returning fused op must still produce a forward
        # record attributed to its primary output.
        q = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        with OpProfiler() as profiler:
            out, weights = Tensor._fused_masked_attention(q, q, q, None, 2.0)
        forward = {row.name: row for row in profiler.stats() if row.cat == "op"}
        assert forward["masked_attention"].flops > 0
        assert forward["masked_attention"].bytes_out == out.data.nbytes
        assert not weights.requires_grad

    def test_backward_flops_flow_into_events(self, rng):
        x = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        with OpProfiler() as profiler:
            (x @ x).sum().backward()
        backward_events = [e for e in profiler.events if e.cat == "backward"]
        assert backward_events
        assert any(event.flops > 0 for event in backward_events)
