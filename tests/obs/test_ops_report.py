"""Unified ops report + ops session: induced incidents raise exactly
the expected alerts and land in the report artifact (ISSUE 10
acceptance: injected latency -> one SLO breach; generator drift ->
one event-drift alert; quiet run -> neither)."""

import json

import pytest

from repro.obs.alerts import AlertLog
from repro.obs.metrics_registry import MetricsRegistry
from repro.obs.ops_report import (
    build_ops_report,
    render_ops_html,
    trace_summaries,
    write_ops_report,
)
from repro.obs.ops_session import OpsSessionConfig, run_ops_session
from repro.obs.report import is_report
from repro.obs.slo import SLOMonitor, SLOSpec
from repro.obs.spans import Tracer, span
from repro.obs.timeseries import TimeSeriesStore
from repro.training.two_stage import build_model

from tests.conftest import TINY_MODEL_CONFIG

SESSION = dict(
    mode="engine",
    num_warm=10,
    num_requests=12,
    k=5,
    num_events=400,
    batch_size=64,
    seed=3,
)


def run_session(tiny_split, tmp_path, **overrides):
    model, __ = build_model(tiny_split, TINY_MODEL_CONFIG)
    config = OpsSessionConfig(**{**SESSION, **overrides})
    return run_ops_session(model, tiny_split.train, tmp_path, config)


@pytest.fixture(scope="module")
def incident_report(tiny_split, tmp_path_factory):
    """One session with BOTH failure injections on."""
    return run_session(
        tiny_split,
        tmp_path_factory.mktemp("ops-incident"),
        inject_latency_s=1.0,
        drift=0.95,
    )


@pytest.fixture(scope="module")
def quiet_report(tiny_split, tmp_path_factory):
    return run_session(tiny_split, tmp_path_factory.mktemp("ops-quiet"))


class TestBuildReport:
    def test_sections_follow_present_sources(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        report = build_ops_report(registry=registry)
        assert is_report(report)
        assert report["kind"] == "ops"
        assert set(report["data"]) == {"fleet_metrics"}
        assert "repro_requests_total 3" in (
            report["data"]["fleet_metrics"]["exposition"]
        )

    def test_full_report_round_trips_json(self, tmp_path):
        store = TimeSeriesStore()
        for i in range(6):
            store.record("s", float(i), ts=float(i))
        monitor = SLOMonitor(
            store,
            [SLOSpec(name="slo", series="s", threshold=10.0, min_samples=2)],
        )
        alerts = AlertLog()
        alerts.emit("drift", "d", "warn", "moved", ts=1.0)
        with Tracer(sample_rate=1.0) as tracer:
            with span("root", kind="test"):
                with span("child"):
                    pass
        report = build_ops_report(
            store=store,
            monitor=monitor,
            alerts=alerts,
            tracer=tracer,
            drift_statuses=[{"name": "d", "psi": 0.5, "drifted": True}],
            online={"model_version": 7},
            meta={"mode": "unit"},
        )
        parsed = json.loads(json.dumps(report))
        assert set(parsed["data"]) == {
            "timeseries", "slo", "alerts", "drift", "traces", "online",
        }
        assert parsed["data"]["slo"]["specs"] == 1
        assert parsed["data"]["alerts"]["total"] == 1
        assert parsed["data"]["traces"]["recent"][0]["root"] == "root"
        path = tmp_path / "ops.json"
        write_ops_report(report, json_path=str(path))
        assert is_report(json.loads(path.read_text()))

    def test_trace_summaries_newest_first_with_span_counts(self):
        with Tracer(sample_rate=1.0) as tracer:
            for name in ("first", "second"):
                with span(name):
                    with span("inner"):
                        pass
        rows = trace_summaries(tracer, limit=1)
        assert len(rows) == 1
        assert rows[0]["root"] == "second"
        assert rows[0]["spans"] == 2
        assert rows[0]["status"] == "ok"


class TestHtml:
    def test_dashboard_is_self_contained(self, incident_report, tmp_path):
        html_text = render_ops_html(incident_report)
        assert html_text.startswith("<!DOCTYPE html>")
        for marker in (
            "<style>", "SLOs", "Alerts", "Drift detectors",
            "Recent traces", "Online training", "<svg",
        ):
            assert marker in html_text
        # No external fetches: a CI artifact tab must render it as-is.
        assert "http://" not in html_text and "https://" not in html_text
        assert "<script" not in html_text
        path = tmp_path / "ops.html"
        write_ops_report(incident_report, html_path=str(path))
        assert path.read_text() == html_text

    def test_escapes_untrusted_strings(self):
        alerts = AlertLog()
        alerts.emit("drift", "<img src=x>", "warn", "<script>alert(1)</script>")
        html_text = render_ops_html(build_ops_report(alerts=alerts))
        assert "<script>alert" not in html_text
        assert "&lt;script&gt;" in html_text


class TestInducedIncidents:
    def test_injected_latency_raises_exactly_one_slo_breach(
        self, incident_report
    ):
        events = incident_report["data"]["alerts"]["events"]
        breaches = [e for e in events if e["kind"] == "slo_breach"]
        assert len(breaches) == 1
        assert breaches[0]["source"] == "request-latency"
        assert breaches[0]["severity"] == "page"
        slo = incident_report["data"]["slo"]
        assert slo["burning"] == 1
        (status,) = slo["status"]
        for rate in status["burn_rates"].values():
            assert rate >= 1.0

    def test_generator_drift_raises_exactly_one_event_drift_alert(
        self, incident_report
    ):
        events = incident_report["data"]["alerts"]["events"]
        drifts = [
            e for e in events
            if e["kind"] == "drift" and e["source"] == "event-drift"
        ]
        assert len(drifts) == 1
        assert drifts[0]["details"]["psi"] >= 0.25
        by_name = {s["name"]: s for s in incident_report["data"]["drift"]}
        assert by_name["event-drift"]["drifted"]

    def test_quiet_session_raises_neither(self, quiet_report):
        events = quiet_report["data"]["alerts"]["events"]
        assert [e for e in events if e["kind"] == "slo_breach"] == []
        assert [
            e for e in events
            if e["kind"] == "drift" and e["source"] == "event-drift"
        ] == []
        assert quiet_report["data"]["slo"]["burning"] == 0
        by_name = {s["name"]: s for s in quiet_report["data"]["drift"]}
        assert not by_name["event-drift"]["drifted"]


class TestSessionReportContents:
    def test_online_health_section(self, quiet_report):
        online = quiet_report["data"]["online"]
        assert online["steps"] >= 1
        assert online["events_ingested"] == SESSION["num_events"]
        assert online["model_version"] >= 1
        assert online["swapped_version"] == online["model_version"]
        assert online["replay_lag_bytes"] == 0  # log fully drained
        # The per-batch JSONL stream exists and carries its schema.
        records = [
            json.loads(line)
            for line in open(online["batch_metrics_path"], encoding="utf-8")
        ]
        assert len(records) == online["steps"]
        assert all(r["schema"] == "repro.obs/online-batch/v1" for r in records)

    def test_fleet_metrics_and_traces_present(self, quiet_report):
        data = quiet_report["data"]
        exposition = data["fleet_metrics"]["exposition"]
        assert "repro_" in exposition
        # Every request starts a trace; online publish/step and the
        # hot-swap add a handful of non-request root spans on top.
        assert data["traces"]["summary"]["traces_started"] >= (
            SESSION["num_warm"] + SESSION["num_requests"]
        )
        series = data["timeseries"]["series"]
        assert "ops.request.latency_s" in series
        assert any(name.startswith("fleet.") for name in series)
        assert "online.swap.version" in series

    def test_meta_records_the_injections(self, incident_report):
        meta = incident_report["meta"]
        assert meta["mode"] == "engine"
        assert meta["inject_latency_s"] == 1.0
        assert meta["drift"] == 0.95
