"""ItemKNN and BPR-MF reference baselines."""

import numpy as np
import pytest

from repro.baselines import BPRMF, ItemKNN


class TestItemKNN:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return ItemKNN(neighbours=10).fit(tiny_split)

    def test_scores_shapes(self, fitted):
        users = np.array([0, 1, 2])
        items = np.array([0, 1, 2])
        assert fitted.score_user_items(users, items).shape == (3,)
        assert fitted.score_group_items(users, items).shape == (3,)

    def test_history_items_score_high(self, fitted, tiny_split):
        # An item similar to the user's history should outscore a
        # random item on average over many users.
        train = tiny_split.train
        edges = train.user_item[:60]
        rng = np.random.default_rng(0)
        positives = fitted.score_user_items(edges[:, 0], edges[:, 1])
        randoms = fitted.score_user_items(
            edges[:, 0], rng.integers(0, train.num_items, size=len(edges))
        )
        assert positives.mean() > randoms.mean()

    def test_neighbour_truncation(self, tiny_split):
        dense = ItemKNN(neighbours=1000).fit(tiny_split)
        sparse = ItemKNN(neighbours=2).fit(tiny_split)
        nonzero_dense = (dense._similarity > 0).sum()
        nonzero_sparse = (sparse._similarity > 0).sum()
        assert nonzero_sparse <= nonzero_dense

    def test_validation(self):
        with pytest.raises(ValueError):
            ItemKNN(neighbours=0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ItemKNN().score_user_items(np.array([0]), np.array([0]))


class TestBPRMF:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return BPRMF(dim=8, epochs=6, batch_size=64, seed=0).fit(tiny_split)

    def test_scores_shapes(self, fitted):
        users = np.array([0, 1])
        items = np.array([0, 1])
        assert fitted.score_user_items(users, items).shape == (2,)
        assert fitted.score_group_items(users, items).shape == (2,)

    def test_learns_training_preferences(self, fitted, tiny_split):
        train = tiny_split.train
        rng = np.random.default_rng(1)
        edges = train.user_item[:80]
        positives = fitted.score_user_items(edges[:, 0], edges[:, 1])
        randoms = fitted.score_user_items(
            edges[:, 0], rng.integers(0, train.num_items, size=len(edges))
        )
        assert (positives > randoms).mean() > 0.6

    def test_group_score_is_member_average(self, fitted, tiny_split):
        group, item = 0, 3
        members = tiny_split.train.group_members[group]
        member_scores = fitted.score_user_items(
            members, np.full(members.size, item, dtype=np.int64)
        )
        group_score = fitted.score_group_items(np.array([group]), np.array([item]))[0]
        assert group_score == pytest.approx(member_scores.mean())

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BPRMF().score_user_items(np.array([0]), np.array([0]))
