"""GroupSARecommender.fit is idempotent (shared-base contract)."""

import numpy as np

from repro.baselines import GroupSARecommender
from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING


class TestFitIdempotence:
    def test_second_fit_is_noop(self, tiny_split):
        adapter = GroupSARecommender(TINY_MODEL_CONFIG, TINY_TRAINING)
        adapter.fit(tiny_split)
        first_model = adapter.model
        scores_before = adapter.score_user_items(np.arange(4), np.arange(4))
        adapter.fit(tiny_split)
        assert adapter.model is first_model
        np.testing.assert_array_equal(
            scores_before, adapter.score_user_items(np.arange(4), np.arange(4))
        )

    def test_fresh_instance_retrains(self, tiny_split):
        import dataclasses

        first = GroupSARecommender(TINY_MODEL_CONFIG, TINY_TRAINING).fit(tiny_split)
        other_training = dataclasses.replace(TINY_TRAINING, seed=777)
        second = GroupSARecommender(TINY_MODEL_CONFIG, other_training).fit(tiny_split)
        a = first.score_user_items(np.arange(4), np.arange(4))
        b = second.score_user_items(np.arange(4), np.arange(4))
        assert not np.array_equal(a, b)
