"""Baseline recommenders: Pop, NCF, AGREE, SIGR, adapters."""

import numpy as np
import pytest

from repro.baselines import (
    AGREE,
    NCF,
    GroupSARecommender,
    Popularity,
    Recommender,
    ScoreAggregationRecommender,
    SIGR,
)
from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING


class TestRecommenderInterface:
    def test_supports_flags(self, tiny_split):
        pop = Popularity().fit(tiny_split)
        assert pop.supports_user_task
        assert pop.supports_group_task

    def test_base_class_raises(self):
        class Empty(Recommender):
            def fit(self, split):
                return self

        empty = Empty()
        assert not empty.supports_user_task
        assert not empty.supports_group_task
        with pytest.raises(NotImplementedError):
            empty.score_user_items(np.array([0]), np.array([0]))


class TestPopularity:
    def test_counts_from_training_only(self, tiny_split):
        pop = Popularity(include_group_interactions=False).fit(tiny_split)
        train = tiny_split.train
        counts = np.zeros(train.num_items)
        np.add.at(counts, train.user_item[:, 1], 1)
        items = np.arange(train.num_items)
        np.testing.assert_array_equal(
            pop.score_user_items(np.zeros_like(items), items), counts
        )

    def test_group_interactions_included_by_default(self, tiny_split):
        with_groups = Popularity().fit(tiny_split)
        without = Popularity(include_group_interactions=False).fit(tiny_split)
        items = np.arange(tiny_split.train.num_items)
        zeros = np.zeros_like(items)
        diff = with_groups.score_user_items(zeros, items) - without.score_user_items(
            zeros, items
        )
        assert diff.sum() == len(tiny_split.train.group_item)

    def test_scores_identical_for_users_and_groups(self, tiny_split):
        pop = Popularity().fit(tiny_split)
        items = np.arange(5)
        np.testing.assert_array_equal(
            pop.score_user_items(np.zeros(5, dtype=int), items),
            pop.score_group_items(np.zeros(5, dtype=int), items),
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            Popularity().score_user_items(np.array([0]), np.array([0]))


class TestNCF:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return NCF(embedding_dim=8, epochs=2, batch_size=64, seed=0).fit(tiny_split)

    def test_scores_shapes(self, fitted, tiny_split):
        users = np.array([0, 1, 2])
        items = np.array([0, 1, 2])
        assert fitted.score_user_items(users, items).shape == (3,)
        assert fitted.score_group_items(users, items).shape == (3,)

    def test_group_offset_separates_entities(self, fitted, tiny_split):
        items = np.arange(4)
        user_scores = fitted.score_user_items(np.zeros(4, dtype=int), items)
        group_scores = fitted.score_group_items(np.zeros(4, dtype=int), items)
        assert not np.allclose(user_scores, group_scores)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NCF().score_user_items(np.array([0]), np.array([0]))

    def test_training_beats_random_on_train_pairs(self, tiny_split):
        model = NCF(embedding_dim=8, epochs=8, batch_size=64, seed=0).fit(tiny_split)
        train = tiny_split.train
        rng = np.random.default_rng(0)
        positives = train.user_item[:50]
        negatives = rng.integers(0, train.num_items, size=len(positives))
        pos_scores = model.score_user_items(positives[:, 0], positives[:, 1])
        neg_scores = model.score_user_items(positives[:, 0], negatives)
        assert (pos_scores > neg_scores).mean() > 0.6


class TestAGREE:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return AGREE(embedding_dim=8, epochs=2, batch_size=64, seed=0).fit(tiny_split)

    def test_both_tasks_supported(self, fitted):
        users = np.array([0, 1])
        items = np.array([0, 1])
        assert fitted.score_user_items(users, items).shape == (2,)
        assert fitted.score_group_items(users, items).shape == (2,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            AGREE().score_group_items(np.array([0]), np.array([0]))

    def test_member_attention_conditioned_on_item(self, fitted, tiny_split):
        scores_a = fitted.score_group_items(np.array([0]), np.array([0]))
        scores_b = fitted.score_group_items(np.array([0]), np.array([1]))
        assert scores_a[0] != scores_b[0]


class TestSIGR:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return SIGR(embedding_dim=8, epochs=2, batch_size=64, seed=0).fit(tiny_split)

    def test_both_tasks_supported(self, fitted):
        users = np.array([0, 1])
        items = np.array([0, 1])
        assert fitted.score_user_items(users, items).shape == (2,)
        assert fitted.score_group_items(users, items).shape == (2,)

    def test_propagation_changes_user_embedding(self, fitted, tiny_split):
        from repro.autograd import no_grad

        network = fitted._network
        users = np.array([0, 1, 2])
        with no_grad():
            enhanced = network.enhanced_user_embeddings(users).data
            own = network.user_embedding(users).data
        assert not np.allclose(enhanced, own)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SIGR().score_user_items(np.array([0]), np.array([0]))


class TestGroupSAAdapters:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return GroupSARecommender(TINY_MODEL_CONFIG, TINY_TRAINING).fit(tiny_split)

    def test_scores(self, fitted):
        assert fitted.score_user_items(np.array([0]), np.array([0])).shape == (1,)
        assert fitted.score_group_items(np.array([0]), np.array([0])).shape == (1,)

    def test_variant_name(self):
        model = GroupSARecommender(TINY_MODEL_CONFIG, TINY_TRAINING, variant="Group-S")
        assert model.name == "Group-S"
        assert not model.config.use_self_attention

    def test_score_aggregation_shares_base(self, fitted, tiny_split):
        wrapper = ScoreAggregationRecommender(fitted, "avg")
        wrapper.fit(tiny_split)  # must not retrain
        assert wrapper.base is fitted
        scores = wrapper.score_group_items(np.array([0, 1]), np.array([0, 1]))
        assert scores.shape == (2,)

    def test_score_aggregation_fits_unfitted_base(self, tiny_split):
        base = GroupSARecommender(TINY_MODEL_CONFIG, TINY_TRAINING)
        wrapper = ScoreAggregationRecommender(base, "lm")
        wrapper.fit(tiny_split)
        assert base.model is not None

    def test_aggregation_name(self, fitted):
        assert ScoreAggregationRecommender(fitted, "ms").name == "Group+ms"

    def test_strategies_order_consistently(self, fitted, tiny_split):
        groups = np.array([0, 1, 2])
        items = np.array([0, 1, 2])
        avg = ScoreAggregationRecommender(fitted, "avg").score_group_items(groups, items)
        lm = ScoreAggregationRecommender(fitted, "lm").score_group_items(groups, items)
        ms = ScoreAggregationRecommender(fitted, "ms").score_group_items(groups, items)
        assert np.all(lm <= avg + 1e-12)
        assert np.all(avg <= ms + 1e-12)

    def test_unfitted_adapter_raises(self):
        adapter = GroupSARecommender(TINY_MODEL_CONFIG, TINY_TRAINING)
        with pytest.raises(RuntimeError):
            adapter.score_user_items(np.array([0]), np.array([0]))
