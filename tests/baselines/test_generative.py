"""PLSA topic model substrate and the PIT / COM generative baselines."""

import numpy as np
import pytest

from repro.baselines import COM, PIT, PLSATopicModel, TopicModelConfig


@pytest.fixture(scope="module")
def fitted_plsa(tiny_split):
    model = PLSATopicModel(TopicModelConfig(num_topics=6, iterations=15, seed=0))
    return model.fit_dataset(tiny_split.train)


class TestTopicModel:
    def test_distributions_are_normalized(self, fitted_plsa):
        np.testing.assert_allclose(
            fitted_plsa.theta.sum(axis=1), 1.0, atol=1e-9
        )
        np.testing.assert_allclose(fitted_plsa.phi.sum(axis=1), 1.0, atol=1e-9)

    def test_log_likelihood_monotone(self, fitted_plsa):
        trace = fitted_plsa.log_likelihood_trace
        assert len(trace) == 15
        diffs = np.diff(trace)
        # EM guarantees monotone non-decreasing likelihood (tiny
        # numerical slack for the smoothing terms).
        assert np.all(diffs > -1e-6)

    def test_scores_are_probabilities(self, fitted_plsa, tiny_split):
        users = np.arange(10)
        items = np.arange(10)
        scores = fitted_plsa.score(users, items)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_item_probabilities_normalized(self, fitted_plsa, tiny_split):
        rows = fitted_plsa.item_probabilities(np.arange(5))
        np.testing.assert_allclose(rows.sum(axis=1), 1.0, atol=1e-9)

    def test_observed_items_score_higher_than_random(self, fitted_plsa, tiny_split):
        train = tiny_split.train
        rng = np.random.default_rng(0)
        edges = train.user_item[:100]
        positives = fitted_plsa.score(edges[:, 0], edges[:, 1])
        randoms = fitted_plsa.score(
            edges[:, 0], rng.integers(0, train.num_items, size=len(edges))
        )
        assert positives.mean() > randoms.mean()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PLSATopicModel().score(np.array([0]), np.array([0]))

    def test_empty_edges_rejected(self):
        with pytest.raises(ValueError):
            PLSATopicModel().fit(np.empty((0, 2), dtype=np.int64), 5, 5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TopicModelConfig(num_topics=0)
        with pytest.raises(ValueError):
            TopicModelConfig(iterations=0)
        with pytest.raises(ValueError):
            TopicModelConfig(alpha=-1.0)

    def test_deterministic_given_seed(self, tiny_split):
        first = PLSATopicModel(TopicModelConfig(num_topics=4, iterations=5, seed=3))
        second = PLSATopicModel(TopicModelConfig(num_topics=4, iterations=5, seed=3))
        first.fit_dataset(tiny_split.train)
        second.fit_dataset(tiny_split.train)
        np.testing.assert_allclose(first.theta, second.theta)


class TestPIT:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return PIT(num_topics=6, topic_iterations=10, impact_iterations=5).fit(
            tiny_split
        )

    def test_impacts_are_distribution(self, fitted):
        assert fitted.impacts.sum() == pytest.approx(1.0)
        assert np.all(fitted.impacts > 0)

    def test_scores_shapes(self, fitted):
        users = np.array([0, 1, 2])
        items = np.array([0, 1, 2])
        assert fitted.score_user_items(users, items).shape == (3,)
        assert fitted.score_group_items(users, items).shape == (3,)

    def test_group_score_is_convex_combination(self, fitted, tiny_split):
        # A group score lies between the min and max member likelihoods.
        group, item = 0, 0
        members = tiny_split.train.group_members[group]
        likelihoods = fitted.score_user_items(
            members, np.full(members.size, item, dtype=np.int64)
        )
        score = fitted.score_group_items(np.array([group]), np.array([item]))[0]
        assert likelihoods.min() - 1e-12 <= score <= likelihoods.max() + 1e-12

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            PIT().score_group_items(np.array([0]), np.array([0]))


class TestCOM:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        return COM(num_topics=6, topic_iterations=10, influence_iterations=5).fit(
            tiny_split
        )

    def test_influence_is_distribution(self, fitted):
        assert fitted.influence.sum() == pytest.approx(1.0)
        assert np.all(fitted.influence > 0)

    def test_group_topic_mixture_normalized(self, fitted, tiny_split):
        mixture = fitted._group_topic_mixture(tiny_split.train.group_members[0])
        assert mixture.sum() == pytest.approx(1.0)
        assert np.all(mixture >= 0)

    def test_scores_shapes(self, fitted):
        groups = np.array([0, 1])
        items = np.array([0, 1])
        assert fitted.score_group_items(groups, items).shape == (2,)
        assert fitted.score_user_items(groups, items).shape == (2,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            COM().score_group_items(np.array([0]), np.array([0]))

    def test_com_and_pit_differ(self, fitted, tiny_split):
        pit = PIT(num_topics=6, topic_iterations=10, impact_iterations=5).fit(
            tiny_split
        )
        groups = np.arange(5)
        items = np.arange(5)
        com_scores = fitted.score_group_items(groups, items)
        pit_scores = pit.score_group_items(groups, items)
        assert not np.allclose(com_scores, pit_scores)
