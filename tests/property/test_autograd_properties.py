"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, gradcheck

finite_floats = st.floats(
    min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False, width=64
)


def tensors(max_dims=3, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(tensors())
def test_softmax_is_probability_distribution(data):
    out = Tensor(data).softmax(axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[:-1]), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(tensors())
def test_softmax_shift_invariance(data):
    base = Tensor(data).softmax(axis=-1).data
    shifted = Tensor(data + 7.5).softmax(axis=-1).data
    np.testing.assert_allclose(base, shifted, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(tensors())
def test_sigmoid_bounds_and_symmetry(data):
    out = Tensor(data).sigmoid().data
    assert np.all((out > 0) & (out < 1))
    mirrored = Tensor(-data).sigmoid().data
    np.testing.assert_allclose(out + mirrored, np.ones_like(out), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(tensors())
def test_log_sigmoid_consistency(data):
    log_sig = Tensor(data).log_sigmoid().data
    sig = Tensor(data).sigmoid().data
    np.testing.assert_allclose(log_sig, np.log(sig), atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(tensors(max_dims=2))
def test_sum_gradient_is_ones(data):
    tensor = Tensor(data, requires_grad=True)
    tensor.sum().backward()
    np.testing.assert_allclose(tensor.grad, np.ones_like(data))


@settings(max_examples=25, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(1, 3), st.integers(1, 4)),
        elements=finite_floats,
    )
)
def test_mul_gradcheck_random_shapes(data):
    a = Tensor(data, requires_grad=True)
    b = Tensor(np.ones_like(data) * 0.5 + 0.1, requires_grad=True)
    gradcheck(lambda x, y: x * y, [a, b])


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(0, 2**31 - 1),
)
def test_matmul_gradcheck_random_dims(rows, inner, cols, seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, inner)), requires_grad=True)
    b = Tensor(rng.normal(size=(inner, cols)), requires_grad=True)
    gradcheck(lambda x, y: x @ y, [a, b])


@settings(max_examples=30, deadline=None)
@given(tensors(max_dims=2), tensors(max_dims=2))
def test_add_commutes(a, b):
    if a.shape != b.shape:
        return
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    np.testing.assert_array_equal(left, right)


@settings(max_examples=30, deadline=None)
@given(tensors(max_dims=3))
def test_layernorm_statistics(data):
    if data.shape[-1] < 2 or np.ptp(data, axis=-1).min() < 1e-6:
        return
    from repro.nn import LayerNorm

    layer = LayerNorm(data.shape[-1])
    out = layer(Tensor(data)).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
