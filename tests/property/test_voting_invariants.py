"""Structural invariants of the voting architecture.

The group representation must not depend on the *order* in which
members appear in the batch row (permutation invariance of the group
score; permutation equivariance of the member representations), nor on
how much padding the row carries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GroupSA, GroupSAConfig
from repro.data.loaders import GroupBatch
from repro.graphs import tfidf_top_neighbours

CONFIG = GroupSAConfig(
    embedding_dim=8,
    key_dim=8,
    value_dim=8,
    ffn_hidden=8,
    attention_hidden=8,
    top_h=2,
    prediction_hidden=(8,),
    fusion_hidden=(8,),
    dropout=0.0,
    seed=3,
)


@pytest.fixture(scope="module")
def model(tiny_split):
    train = tiny_split.train
    instance = GroupSA(train.num_users, train.num_items, CONFIG)
    instance.set_top_neighbours(tfidf_top_neighbours(train, CONFIG.top_h))
    instance.eval()
    return instance


def make_batch(members, adjacency, mask):
    return GroupBatch(
        group_ids=np.zeros(len(members), dtype=np.int64),
        members=np.asarray(members, dtype=np.int64),
        mask=np.asarray(mask, dtype=bool),
        adjacency=np.asarray(adjacency, dtype=bool),
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_group_score_invariant_to_member_order(model, seed):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(2, 6))
    members = rng.choice(20, size=size, replace=False)
    adjacency = rng.random((size, size)) < 0.5
    adjacency = np.triu(adjacency, 1)
    adjacency = adjacency | adjacency.T
    mask = np.ones(size, dtype=bool)

    permutation = rng.permutation(size)
    base = make_batch([members], [adjacency], [mask])
    permuted = make_batch(
        [members[permutation]],
        [adjacency[np.ix_(permutation, permutation)]],
        [mask],
    )
    item = np.array([int(rng.integers(0, model.num_items))])
    original = model.score_group_items(base, item)
    shuffled = model.score_group_items(permuted, item)
    np.testing.assert_allclose(original, shuffled, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(0, 4))
def test_group_score_invariant_to_padding(model, seed, extra_padding):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(2, 5))
    members = rng.choice(20, size=size, replace=False)
    adjacency = rng.random((size, size)) < 0.5
    adjacency = np.triu(adjacency, 1)
    adjacency = adjacency | adjacency.T

    def padded(width):
        member_row = np.zeros(width, dtype=np.int64)
        member_row[:size] = members
        mask_row = np.zeros(width, dtype=bool)
        mask_row[:size] = True
        adjacency_block = np.zeros((width, width), dtype=bool)
        adjacency_block[:size, :size] = adjacency
        return make_batch([member_row], [adjacency_block], [mask_row])

    item = np.array([int(rng.integers(0, model.num_items))])
    tight = model.score_group_items(padded(size), item)
    loose = model.score_group_items(padded(size + extra_padding), item)
    np.testing.assert_allclose(tight, loose, atol=1e-8)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_member_attention_equivariant(model, seed):
    rng = np.random.default_rng(seed)
    size = 4
    members = rng.choice(20, size=size, replace=False)
    adjacency = np.ones((size, size), dtype=bool)
    mask = np.ones(size, dtype=bool)
    permutation = rng.permutation(size)

    item = np.array([3])
    gamma = model.member_attention(make_batch([members], [adjacency], [mask]), item)[0]
    gamma_permuted = model.member_attention(
        make_batch(
            [members[permutation]],
            [adjacency[np.ix_(permutation, permutation)]],
            [mask],
        ),
        item,
    )[0]
    np.testing.assert_allclose(gamma[permutation], gamma_permuted, atol=1e-8)
