"""Statistical and ordering guarantees of IVF candidate generation.

Two worlds bracket IVF's operating range: ``clustered`` mimics trained
embedding tables (the friendly case — the true Top-K concentrates in
few lists) and ``uniform`` is isotropic noise (the adversarial case —
the Top-K spreads over many lists).  The recall floor must hold on
BOTH with the probe budgets the crossover benchmark uses, and the
exact-rerank ordering contract (descending score, ascending position
among ties) must hold on every query.

Everything is seeded: these are properties of the algorithm, not of a
lucky draw.
"""

import numpy as np
import pytest

from repro.engine.ann import IVFIndex, recall_at_k
from repro.engine.bench import auto_nprobe, synthetic_item_vectors
from repro.engine.topk import topk_indices

K = 10
NUM_QUERIES = 40
DIM = 16
NUM_ITEMS = 4000


def world_index(mode, seed):
    vectors = synthetic_item_vectors(NUM_ITEMS, DIM, mode, seed=seed)
    index = IVFIndex(vectors, seed=seed)
    return vectors, index


class TestRecallFloor:
    @pytest.mark.parametrize("mode", ["clustered", "uniform"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_mean_recall_at_least_95_percent(self, mode, seed):
        vectors, index = world_index(mode, seed)
        nprobe = auto_nprobe(mode, index.nlist)
        queries = np.random.default_rng(seed + 100).standard_normal(
            (NUM_QUERIES, DIM)
        )
        recalls = []
        for query in queries:
            exact = topk_indices(vectors @ query, K)
            approx, __ = index.search(query, K, nprobe=nprobe)
            recalls.append(recall_at_k(approx, exact))
        assert np.mean(recalls) >= 0.95, (mode, seed, float(np.mean(recalls)))

    @pytest.mark.parametrize("mode", ["clustered", "uniform"])
    def test_full_probe_recall_is_perfect(self, mode):
        vectors, index = world_index(mode, seed=3)
        queries = np.random.default_rng(9).standard_normal((10, DIM))
        for query in queries:
            exact = topk_indices(vectors @ query, K)
            approx, __ = index.search(query, K, nprobe=index.nlist)
            assert recall_at_k(approx, exact) == 1.0


class TestRerankContract:
    @pytest.mark.parametrize("mode", ["clustered", "uniform"])
    def test_scores_descend_and_ties_ascend(self, mode):
        vectors, index = world_index(mode, seed=5)
        queries = np.random.default_rng(11).standard_normal((NUM_QUERIES, DIM))
        for query in queries:
            positions, scores = index.search(query, K, nprobe=4)
            assert np.all(np.diff(scores) <= 0)
            tied = np.diff(scores) == 0
            assert np.all(np.diff(positions)[tied] > 0)
            assert np.unique(positions).size == positions.size

    def test_duplicate_rows_force_ascending_tie_order(self):
        # 8 distinct directions, each repeated 50 times: the Top-K is
        # wall-to-wall ties, so the ascending-position rule is the only
        # thing determining the output.
        rng = np.random.default_rng(21)
        base = rng.standard_normal((8, DIM))
        vectors = np.repeat(base, 50, axis=0)
        index = IVFIndex(vectors, nlist=16, seed=0)
        for __ in range(10):
            query = rng.standard_normal(DIM)
            positions, scores = index.search(query, 25, nprobe=16)
            tied = np.diff(scores) == 0
            assert np.all(np.diff(positions)[tied] > 0)
            # Every winner comes from the best duplicate bucket.  (Not
            # asserting *which* duplicates: the bucket can straddle two
            # inverted lists, and per-list matvecs may differ in the
            # last ulp — a legal perturbation, same as the BLAS
            # batch-shape allowance in the parity tests.)
            best = int(np.argmax(base @ query))
            block = np.nonzero(
                np.isclose(vectors @ query, (base @ query)[best])
            )[0]
            assert np.isin(positions, block).all()

    def test_candidates_feed_exact_rerank_in_id_order(self):
        vectors, index = world_index("clustered", seed=8)
        query = np.random.default_rng(13).standard_normal(DIM)
        candidates = index.candidates(query, 128, nprobe=8)
        assert np.all(np.diff(candidates) > 0)
        # Reranking the candidate slice with the exact kernel picks the
        # same items as reranking via their global scores.
        scores = vectors[candidates] @ query
        chosen = topk_indices(scores, K)
        assert np.array_equal(
            candidates[chosen],
            candidates[np.argsort(-scores, kind="stable")[:K]],
        )
