"""Hypothesis property tests for metrics, sampling and the generator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sampling import NegativeSampler, sample_evaluation_candidates
from repro.evaluation import hit_ratio_at_k, ndcg_at_k, rank_of_positive


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 50),
    st.integers(1, 20),
    st.integers(0, 2**31 - 1),
)
def test_rank_bounds(num_candidates, k, seed):
    rng = np.random.default_rng(seed)
    positives = rng.normal(size=5)
    candidates = rng.normal(size=(5, num_candidates))
    ranks = rank_of_positive(positives, candidates)
    assert np.all(ranks >= 0)
    assert np.all(ranks <= num_candidates)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 30), st.integers(0, 2**31 - 1))
def test_hr_ndcg_relationship(k, seed):
    rng = np.random.default_rng(seed)
    ranks = rng.uniform(0, 40, size=20)
    hr = hit_ratio_at_k(ranks, k)
    ndcg = ndcg_at_k(ranks, k)
    # NDCG is bounded by HR and both live in [0, 1].
    assert np.all(ndcg <= hr + 1e-12)
    assert np.all((hr == 0) | (hr == 1))
    assert np.all((ndcg >= 0) & (ndcg <= 1))


@settings(max_examples=50, deadline=None)
@given(st.integers(2, 15))
def test_hr_monotone_in_k(k):
    ranks = np.linspace(0, 20, 30)
    smaller = hit_ratio_at_k(ranks, k - 1).mean()
    larger = hit_ratio_at_k(ranks, k).mean()
    assert larger >= smaller


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(0, 49), max_size=40),
    st.integers(1, 8),
    st.integers(0, 2**31 - 1),
)
def test_negative_sampler_never_returns_observed(observed, count, seed):
    sampler = NegativeSampler([observed], num_items=50, rng=seed)
    negatives = sampler.sample(0, count)
    assert len(negatives) == count
    assert not set(negatives.tolist()) & observed


@settings(max_examples=30, deadline=None)
@given(
    st.sets(st.integers(0, 99), max_size=60),
    st.integers(1, 40),
    st.integers(0, 2**31 - 1),
)
def test_candidate_sampling_properties(observed, count, seed):
    candidates = sample_evaluation_candidates(0, [observed], 100, count, rng=seed)
    assert len(set(candidates.tolist())) == len(candidates)
    assert not set(candidates.tolist()) & observed
    assert len(candidates) == min(count, 100 - len(observed))


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_generator_always_valid(seed):
    from repro.data.synthetic import SyntheticConfig, generate

    config = SyntheticConfig(
        num_users=40, num_items=30, num_groups=12, avg_group_size=3.0, seed=seed
    )
    world = generate(config)
    world.dataset.validate()
    sizes = world.dataset.group_sizes()
    assert sizes.min() >= 2


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(2, 10))
def test_bpr_loss_positive_and_decreasing_in_margin(seed, count):
    from repro.autograd import Tensor
    from repro.training import bpr_loss

    rng = np.random.default_rng(seed)
    scores = rng.normal(size=count)
    margins = np.array([0.0, 1.0, 2.0])
    losses = [
        bpr_loss(Tensor(scores + margin), Tensor(scores)).item() for margin in margins
    ]
    assert all(loss > 0 for loss in losses)
    assert losses[0] > losses[1] > losses[2]
