"""GroupRecommendationDataset invariants and derived views."""

import numpy as np
import pytest

from repro.data import GroupRecommendationDataset


def make_dataset(**overrides):
    defaults = dict(
        num_users=4,
        num_items=5,
        num_groups=2,
        user_item=[(0, 0), (0, 1), (1, 2), (3, 4)],
        group_item=[(0, 1), (1, 3)],
        social=[(0, 1), (1, 2), (2, 3)],
        group_members=[np.array([0, 1]), np.array([1, 2, 3])],
    )
    defaults.update(overrides)
    return GroupRecommendationDataset(**defaults)


class TestValidation:
    def test_valid_dataset_constructs(self):
        dataset = make_dataset()
        assert dataset.num_users == 4

    def test_user_id_out_of_range(self):
        with pytest.raises(ValueError, match="user id"):
            make_dataset(user_item=[(9, 0)])

    def test_item_id_out_of_range(self):
        with pytest.raises(ValueError, match="item id"):
            make_dataset(group_item=[(0, 99)])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loops"):
            make_dataset(social=[(1, 1)])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="no members"):
            make_dataset(group_members=[np.array([], dtype=np.int64), np.array([1])])

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_dataset(group_members=[np.array([1, 1]), np.array([2])])

    def test_member_count_mismatch(self):
        with pytest.raises(ValueError, match="member lists"):
            make_dataset(group_members=[np.array([0, 1])])

    def test_bad_edge_shape(self):
        with pytest.raises(ValueError, match="shape"):
            make_dataset(user_item=np.zeros((3, 3), dtype=np.int64))


class TestDerivedViews:
    def test_user_items(self):
        dataset = make_dataset()
        sets = dataset.user_items()
        assert sets[0] == {0, 1}
        assert sets[2] == set()

    def test_group_items(self):
        dataset = make_dataset()
        assert dataset.group_items()[0] == {1}

    def test_friends_symmetric_sorted(self):
        dataset = make_dataset()
        friends = dataset.friends()
        np.testing.assert_array_equal(friends[1], [0, 2])
        np.testing.assert_array_equal(friends[0], [1])

    def test_friend_set(self):
        dataset = make_dataset()
        assert dataset.friend_set()[1] == {0, 2}

    def test_item_popularity(self):
        dataset = make_dataset(user_item=[(0, 0), (1, 0), (2, 3)])
        popularity = dataset.item_popularity()
        assert popularity[0] == 2
        assert popularity[3] == 1
        assert popularity[1] == 0

    def test_group_sizes(self):
        np.testing.assert_array_equal(make_dataset().group_sizes(), [2, 3])

    def test_caches_are_stable(self):
        dataset = make_dataset()
        assert dataset.user_items() is dataset.user_items()
        assert dataset.friends() is dataset.friends()


class TestWithInteractions:
    def test_replaces_edges_keeps_structure(self):
        dataset = make_dataset()
        derived = dataset.with_interactions(
            user_item=np.array([[0, 0]]), group_item=np.array([[1, 1]]), name="derived"
        )
        assert derived.name == "derived"
        assert len(derived.user_item) == 1
        assert derived.num_users == dataset.num_users
        np.testing.assert_array_equal(derived.social, dataset.social)

    def test_empty_edges_supported(self):
        dataset = make_dataset()
        derived = dataset.with_interactions(
            user_item=np.empty((0, 2), dtype=np.int64),
            group_item=np.empty((0, 2), dtype=np.int64),
        )
        assert len(derived.user_item) == 0
        assert derived.user_items()[0] == set()
