"""Timestamps and chronological splitting."""

import numpy as np
import pytest

from repro.data.temporal import (
    InteractionTimestamps,
    attach_timestamps,
    temporal_split,
)


@pytest.fixture
def timestamps(tiny_world):
    return attach_timestamps(tiny_world.dataset, rng=0)


class TestAttachTimestamps:
    def test_aligned_lengths(self, tiny_world, timestamps):
        timestamps.validate_against(tiny_world.dataset)

    def test_within_horizon(self, tiny_world):
        times = attach_timestamps(tiny_world.dataset, horizon_days=100.0, rng=0)
        assert times.user_item.min() >= 0.0
        assert times.user_item.max() <= 100.0

    def test_same_item_clusters_in_time(self, tiny_world, timestamps):
        dataset = tiny_world.dataset
        # Spread of timestamps within an item << spread across items.
        within = []
        for item in range(dataset.num_items):
            mask = dataset.user_item[:, 1] == item
            if mask.sum() >= 3:
                within.append(timestamps.user_item[mask].std())
        overall = timestamps.user_item.std()
        assert np.mean(within) < overall

    def test_deterministic(self, tiny_world):
        first = attach_timestamps(tiny_world.dataset, rng=5)
        second = attach_timestamps(tiny_world.dataset, rng=5)
        np.testing.assert_allclose(first.user_item, second.user_item)

    def test_validation_errors(self, tiny_world):
        with pytest.raises(ValueError):
            attach_timestamps(tiny_world.dataset, horizon_days=0.0)
        bad = InteractionTimestamps(user_item=np.zeros(1), group_item=np.zeros(1))
        with pytest.raises(ValueError, match="timestamp count"):
            bad.validate_against(tiny_world.dataset)


class TestTemporalSplit:
    def test_partition_complete(self, tiny_world, timestamps):
        dataset = tiny_world.dataset
        split = temporal_split(dataset, timestamps)
        total = (
            len(split.train.user_item)
            + len(split.validation.user_item)
            + len(split.test.user_item)
        )
        assert total == len(dataset.user_item)

    def test_train_precedes_test(self, tiny_world, timestamps):
        dataset = tiny_world.dataset
        split = temporal_split(dataset, timestamps)
        time_of = {
            (int(u), int(i)): t
            for (u, i), t in zip(dataset.user_item, timestamps.user_item)
        }
        train_max = max(time_of[tuple(edge)] for edge in split.train.user_item)
        test_min = min(time_of[tuple(edge)] for edge in split.test.user_item)
        assert train_max <= test_min

    def test_validation_is_most_recent_training_slice(self, tiny_world, timestamps):
        dataset = tiny_world.dataset
        split = temporal_split(dataset, timestamps)
        time_of = {
            (int(u), int(i)): t
            for (u, i), t in zip(dataset.user_item, timestamps.user_item)
        }
        train_max = max(time_of[tuple(edge)] for edge in split.train.user_item)
        valid_min = min(time_of[tuple(edge)] for edge in split.validation.user_item)
        assert train_max <= valid_min

    def test_group_edges_also_chronological(self, tiny_world, timestamps):
        dataset = tiny_world.dataset
        split = temporal_split(dataset, timestamps)
        time_of = {
            (int(g), int(i)): t
            for (g, i), t in zip(dataset.group_item, timestamps.group_item)
        }
        if len(split.train.group_item) and len(split.test.group_item):
            train_max = max(time_of[tuple(edge)] for edge in split.train.group_item)
            test_min = min(time_of[tuple(edge)] for edge in split.test.group_item)
            assert train_max <= test_min

    def test_usable_for_training(self, tiny_world, timestamps):
        from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING
        from repro.training import train_groupsa

        split = temporal_split(tiny_world.dataset, timestamps)
        model, batcher, history = train_groupsa(split, TINY_MODEL_CONFIG, TINY_TRAINING)
        assert np.isfinite(history.final_loss("group"))

    def test_fraction_validation(self, tiny_world, timestamps):
        with pytest.raises(ValueError):
            temporal_split(tiny_world.dataset, timestamps, train_fraction=2.0)
