"""AGREE/SIGR file-format loader."""

import numpy as np
import pytest

from repro.data.real import (
    FormatError,
    load_agree_format,
    parse_group_members,
    parse_pair_file,
)


@pytest.fixture
def dataset_dir(tmp_path):
    (tmp_path / "groupMember.txt").write_text(
        "10 100,101\n"
        "11 101,102,103\n"
    )
    (tmp_path / "userRating.txt").write_text(
        "100 7 5.0 1234\n"
        "100 9\n"
        "101 7\n"
        "102 8\n"
        "103 9\n"
    )
    (tmp_path / "groupRating.txt").write_text(
        "10 7\n"
        "11 8\n"
    )
    (tmp_path / "socialConnection.txt").write_text(
        "100 101\n"
        "101 102\n"
        "# comment line\n"
        "102 103\n"
    )
    return tmp_path


class TestLoader:
    def test_counts(self, dataset_dir):
        dataset = load_agree_format(dataset_dir)
        assert dataset.num_users == 4
        assert dataset.num_items == 3
        assert dataset.num_groups == 2

    def test_ids_are_dense_and_remapped(self, dataset_dir):
        dataset = load_agree_format(dataset_dir)
        assert dataset.user_item[:, 0].max() < dataset.num_users
        assert dataset.user_item[:, 1].max() < dataset.num_items
        dataset.validate()

    def test_group_members_remapped(self, dataset_dir):
        dataset = load_agree_format(dataset_dir)
        # raw group 10 -> dense 0 with raw members 100,101 -> dense 0,1.
        np.testing.assert_array_equal(dataset.group_members[0], [0, 1])
        np.testing.assert_array_equal(dataset.group_members[1], [1, 2, 3])

    def test_extra_rating_columns_ignored(self, dataset_dir):
        dataset = load_agree_format(dataset_dir)
        # (100, 7) appears with rating+timestamp columns; still one edge.
        assert len(dataset.user_item) == 5

    def test_social_optional(self, dataset_dir):
        (dataset_dir / "socialConnection.txt").unlink()
        dataset = load_agree_format(dataset_dir)
        assert len(dataset.social) == 0

    def test_name_defaults_to_directory(self, dataset_dir):
        dataset = load_agree_format(dataset_dir)
        assert dataset.name == dataset_dir.name
        assert load_agree_format(dataset_dir, name="yelp").name == "yelp"

    def test_usable_by_split_and_batcher(self, dataset_dir):
        from repro.data import GroupBatcher, split_interactions

        dataset = load_agree_format(dataset_dir)
        split = split_interactions(dataset, rng=0)
        batcher = GroupBatcher(split.train)
        batch = batcher.batch([0, 1])
        assert batch.members.shape[0] == 2


class TestParsers:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FormatError, match="missing"):
            parse_pair_file(tmp_path / "nope.txt")

    def test_bad_member_line(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(FormatError, match="expected"):
            parse_group_members(path)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("a b,c\n")
        with pytest.raises(FormatError, match="non-integer"):
            parse_group_members(path)

    def test_empty_member_list(self, tmp_path):
        path = tmp_path / "m.txt"
        path.write_text("5 ,\n")
        with pytest.raises(FormatError, match="no members"):
            parse_group_members(path)

    def test_short_rating_line(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("42\n")
        with pytest.raises(FormatError, match="two columns"):
            parse_pair_file(path)

    def test_group_without_members_rejected(self, tmp_path):
        (tmp_path / "groupMember.txt").write_text("1 100\n")
        (tmp_path / "userRating.txt").write_text("100 5\n")
        (tmp_path / "groupRating.txt").write_text("2 5\n")  # group 2 undefined
        with pytest.raises(FormatError, match="no members"):
            load_agree_format(tmp_path, social_file=None)
