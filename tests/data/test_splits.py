"""Train/validation/test splitting."""

import numpy as np
import pytest

from repro.data import split_interactions


class TestSplitInteractions:
    def test_partition_is_exact(self, tiny_world):
        dataset = tiny_world.dataset
        split = split_interactions(dataset, rng=0)
        total_user = (
            len(split.train.user_item)
            + len(split.validation.user_item)
            + len(split.test.user_item)
        )
        assert total_user == len(dataset.user_item)
        total_group = (
            len(split.train.group_item)
            + len(split.validation.group_item)
            + len(split.test.group_item)
        )
        assert total_group == len(dataset.group_item)

    def test_no_overlap(self, tiny_world):
        split = split_interactions(tiny_world.dataset, rng=0)
        train = set(map(tuple, split.train.user_item))
        test = set(map(tuple, split.test.user_item))
        valid = set(map(tuple, split.validation.user_item))
        assert not train & test
        assert not train & valid
        assert not valid & test

    def test_fractions_respected(self, tiny_world):
        dataset = tiny_world.dataset
        split = split_interactions(dataset, train_fraction=0.8, validation_fraction=0.1, rng=0)
        total = len(dataset.user_item)
        train_plus_valid = len(split.train.user_item) + len(split.validation.user_item)
        assert train_plus_valid == pytest.approx(0.8 * total, abs=1)
        assert len(split.validation.user_item) == pytest.approx(0.08 * total, abs=1)

    def test_side_information_shared(self, tiny_world):
        split = split_interactions(tiny_world.dataset, rng=0)
        np.testing.assert_array_equal(split.train.social, split.test.social)
        assert len(split.train.group_members) == len(split.test.group_members)

    def test_deterministic_with_seed(self, tiny_world):
        first = split_interactions(tiny_world.dataset, rng=42)
        second = split_interactions(tiny_world.dataset, rng=42)
        np.testing.assert_array_equal(first.test.user_item, second.test.user_item)

    def test_different_seeds_differ(self, tiny_world):
        first = split_interactions(tiny_world.dataset, rng=1)
        second = split_interactions(tiny_world.dataset, rng=2)
        assert not np.array_equal(first.test.user_item, second.test.user_item)

    def test_full_union(self, tiny_world):
        dataset = tiny_world.dataset
        split = split_interactions(dataset, rng=0)
        full = split.full
        assert len(full.user_item) == len(dataset.user_item)
        assert len(full.group_item) == len(dataset.group_item)

    def test_invalid_fractions(self, tiny_world):
        with pytest.raises(ValueError):
            split_interactions(tiny_world.dataset, train_fraction=1.5)
        with pytest.raises(ValueError):
            split_interactions(tiny_world.dataset, validation_fraction=1.0)

    def test_zero_validation(self, tiny_world):
        split = split_interactions(tiny_world.dataset, validation_fraction=0.0, rng=0)
        assert len(split.validation.user_item) == 0
