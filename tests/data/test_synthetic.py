"""Synthetic world generator: statistics, invariants, determinism."""

import numpy as np

from repro.data.synthetic import SyntheticConfig, generate
from repro.graphs.social import is_socially_connected


SMALL = SyntheticConfig(
    num_users=120,
    num_items=80,
    num_groups=60,
    avg_friends=8.0,
    avg_user_interactions=9.0,
    avg_group_interactions=1.3,
    avg_group_size=4.0,
    seed=3,
)


class TestGeneration:
    def test_entity_counts(self):
        world = generate(SMALL)
        assert world.dataset.num_users == 120
        assert world.dataset.num_items == 80
        assert world.dataset.num_groups == 60

    def test_deterministic_given_seed(self):
        first = generate(SMALL)
        second = generate(SMALL)
        np.testing.assert_array_equal(first.dataset.user_item, second.dataset.user_item)
        np.testing.assert_array_equal(first.dataset.social, second.dataset.social)
        np.testing.assert_array_equal(
            first.dataset.group_item, second.dataset.group_item
        )

    def test_different_seed_differs(self):
        import dataclasses

        other = generate(dataclasses.replace(SMALL, seed=99))
        base = generate(SMALL)
        assert not np.array_equal(base.dataset.user_item, other.dataset.user_item)

    def test_dataset_passes_validation(self):
        generate(SMALL).dataset.validate()


class TestStatistics:
    def test_average_friends_close_to_target(self):
        dataset = generate(SMALL).dataset
        avg = 2 * len(dataset.social) / dataset.num_users
        assert abs(avg - SMALL.avg_friends) < 1.5

    def test_average_interactions_close_to_target(self):
        dataset = generate(SMALL).dataset
        avg = len(dataset.user_item) / dataset.num_users
        assert abs(avg - SMALL.avg_user_interactions) < 2.0

    def test_group_interactions_close_to_target(self):
        dataset = generate(SMALL).dataset
        avg = len(dataset.group_item) / dataset.num_groups
        assert abs(avg - SMALL.avg_group_interactions) < 0.5

    def test_group_sizes_in_range(self):
        dataset = generate(SMALL).dataset
        sizes = dataset.group_sizes()
        assert sizes.min() >= 2
        assert sizes.max() <= SMALL.max_group_size

    def test_every_user_has_an_interaction(self):
        dataset = generate(SMALL).dataset
        users_with_items = set(dataset.user_item[:, 0].tolist())
        assert users_with_items == set(range(dataset.num_users))

    def test_popularity_is_long_tailed(self):
        dataset = generate(SMALL).dataset
        popularity = np.sort(dataset.item_popularity())[::-1]
        top_decile = popularity[: len(popularity) // 10].sum()
        assert top_decile > 0.3 * popularity.sum()


class TestPlantedStructure:
    def test_groups_are_socially_connected(self):
        world = generate(SMALL)
        connected = sum(
            is_socially_connected(members, world.dataset)
            for members in world.dataset.group_members
        )
        # The generator grows groups along social edges; allow a few
        # fallback pairs for isolated seeds.
        assert connected >= 0.9 * world.dataset.num_groups

    def test_latent_shapes(self):
        world = generate(SMALL)
        assert world.user_latent.shape == (120, SMALL.latent_dim)
        assert world.item_latent.shape == (80, SMALL.latent_dim)
        assert world.item_topic.shape == (80,)
        assert world.user_expertise.shape == (120, SMALL.num_communities)

    def test_expertise_positive(self):
        world = generate(SMALL)
        assert (world.user_expertise > 0).all()

    def test_group_choices_follow_member_taste(self):
        # Group-chosen items should align better with the mean member
        # latent than random items do: the planted vote is visible.
        world = generate(SMALL)
        dataset = world.dataset
        rng = np.random.default_rng(0)
        chosen, random = [], []
        for group, item in dataset.group_item:
            members = dataset.group_members[group]
            mean_taste = world.user_latent[members].mean(axis=0)
            chosen.append(mean_taste @ world.item_latent[item])
            random.append(
                mean_taste @ world.item_latent[rng.integers(0, dataset.num_items)]
            )
        assert np.mean(chosen) > np.mean(random) + 0.1


class TestScaled:
    def test_scaled_counts(self):
        scaled = SMALL.scaled(0.5)
        assert scaled.num_users == 60
        assert scaled.num_items == 40
        assert scaled.num_groups == 30

    def test_scaled_floors(self):
        scaled = SMALL.scaled(0.0001)
        assert scaled.num_users >= 20
        assert scaled.num_groups >= 10
