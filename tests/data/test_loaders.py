"""Group batching and Top-H neighbour tables."""

import numpy as np

from repro.data import GroupBatcher, GroupRecommendationDataset
from repro.data.loaders import build_top_neighbours


def small_dataset():
    return GroupRecommendationDataset(
        num_users=5,
        num_items=6,
        num_groups=3,
        user_item=[(0, 0), (0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        group_item=[(0, 0), (1, 1), (2, 2)],
        social=[(0, 1), (1, 2), (3, 4)],
        group_members=[
            np.array([0, 1, 2]),
            np.array([3, 4]),
            np.array([0, 1, 2, 3, 4]),
        ],
    )


class TestGroupBatcher:
    def test_padding_to_max_size(self):
        batcher = GroupBatcher(small_dataset())
        batch = batcher.batch([0, 1])
        assert batch.members.shape == (2, 5)
        np.testing.assert_array_equal(batch.mask[0], [1, 1, 1, 0, 0])
        np.testing.assert_array_equal(batch.mask[1], [1, 1, 0, 0, 0])

    def test_members_preserved(self):
        batcher = GroupBatcher(small_dataset())
        batch = batcher.batch([2])
        np.testing.assert_array_equal(batch.members[0], [0, 1, 2, 3, 4])

    def test_adjacency_matches_social_graph(self):
        batcher = GroupBatcher(small_dataset())
        batch = batcher.batch([0])  # members 0,1,2; edges (0,1),(1,2)
        adjacency = batch.adjacency[0, :3, :3]
        assert adjacency[0, 1] and adjacency[1, 0]
        assert adjacency[1, 2] and adjacency[2, 1]
        assert not adjacency[0, 2]
        assert not adjacency.diagonal().any()  # diagonal added later by the bias builder

    def test_padded_adjacency_is_false(self):
        batcher = GroupBatcher(small_dataset())
        batch = batcher.batch([1])
        assert not batch.adjacency[0, :, 2:].any()

    def test_max_members_truncates(self):
        batcher = GroupBatcher(small_dataset(), max_members=3)
        batch = batcher.batch([2])
        assert batch.members.shape == (1, 3)
        assert batch.mask[0].all()

    def test_custom_closeness(self):
        everyone = lambda members: np.ones((members.size, members.size), dtype=bool)
        batcher = GroupBatcher(small_dataset(), closeness=everyone)
        batch = batcher.batch([0])
        assert batch.adjacency[0, :3, :3].all()

    def test_all_groups(self):
        batcher = GroupBatcher(small_dataset())
        batch = batcher.all_groups()
        assert len(batch) == 3

    def test_batch_order_matches_request(self):
        batcher = GroupBatcher(small_dataset())
        batch = batcher.batch([2, 0])
        np.testing.assert_array_equal(batch.group_ids, [2, 0])
        assert batch.mask[0].sum() == 5
        assert batch.mask[1].sum() == 3


class TestTopNeighbours:
    def test_ranking_by_score(self):
        dataset = small_dataset()
        item_scores = np.array([0.1, 0.9, 0.2, 0.3, 0.4, 0.5])
        friend_scores = np.zeros(5)
        tables = build_top_neighbours(dataset, 1, item_scores, friend_scores)
        # User 0 interacted with items 0 and 1; item 1 scores higher.
        assert tables.items[0, 0] == 1

    def test_padding_mask(self):
        dataset = small_dataset()
        tables = build_top_neighbours(
            dataset, 3, np.ones(6), np.ones(5)
        )
        # User 3 has a single interaction -> one valid slot.
        assert tables.item_mask[3].sum() == 1
        # User 0 has one friend (user 1).
        assert tables.friend_mask[0].sum() == 1

    def test_top_h_property(self):
        tables = build_top_neighbours(small_dataset(), 4, np.ones(6), np.ones(5))
        assert tables.top_h == 4

    def test_friends_ranked(self):
        dataset = small_dataset()
        friend_scores = np.array([0.0, 0.5, 1.0, 0.0, 0.0])
        tables = build_top_neighbours(dataset, 1, np.ones(6), friend_scores)
        # User 1's friends are 0 and 2; 2 scores higher.
        assert tables.friends[1, 0] == 2
