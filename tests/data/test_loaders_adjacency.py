"""Pin the vectorized GroupBatcher adjacency to the per-group reference.

``_pairwise_adjacency`` must reproduce ``_local_adjacency`` — including
its quirk of checking only the ``row < col`` direction of a possibly
asymmetric friend relation before symmetrizing — bit for bit on the
padded (B, L, L) blocks."""

import numpy as np

from repro.data.loaders import GroupBatcher, _local_adjacency, _pairwise_adjacency
from repro.data.synthetic import generate
from tests.conftest import TINY_CONFIG


def _reference_batcher_arrays(dataset, length):
    """Replicate the pre-vectorization __init__ loop."""
    count = dataset.num_groups
    members = np.zeros((count, length), dtype=np.int64)
    mask = np.zeros((count, length), dtype=bool)
    adjacency = np.zeros((count, length, length), dtype=bool)
    friend_sets = dataset.friend_set()
    for group_id, group_members in enumerate(dataset.group_members):
        kept = group_members[:length]
        size = kept.size
        members[group_id, :size] = kept
        mask[group_id, :size] = True
        adjacency[group_id, :size, :size] = _local_adjacency(kept, friend_sets)
    return members, mask, adjacency


def _assert_batcher_matches_reference(dataset, max_members=None):
    batcher = GroupBatcher(dataset, max_members=max_members)
    members, mask, adjacency = _reference_batcher_arrays(
        dataset, batcher.max_members
    )
    np.testing.assert_array_equal(batcher._members, members)
    np.testing.assert_array_equal(batcher._mask, mask)
    np.testing.assert_array_equal(batcher._adjacency, adjacency)


def test_tiny_world_bit_identical():
    world = generate(TINY_CONFIG)
    _assert_batcher_matches_reference(world.dataset)


def test_truncated_groups_bit_identical():
    """max_members below the natural maximum truncates member lists and
    with them the adjacency blocks."""
    world = generate(TINY_CONFIG)
    _assert_batcher_matches_reference(world.dataset, max_members=2)


def test_asymmetric_friendship_quirk_preserved():
    """u considers v a friend but not vice versa: the reference only
    consults the row<col direction, so the pair connects iff the
    *earlier-positioned* member holds the edge."""
    friend_sets = [set() for _ in range(4)]
    friend_sets[0] = {1}  # 0 -> 1 only
    friend_sets[2] = set()  # 3 -> 2 exists but 2 -> 3 does not
    friend_sets[3] = {2}

    members = np.array([[0, 1, 0, 0], [2, 3, 0, 0]], dtype=np.int64)
    mask = np.array(
        [[True, True, False, False], [True, True, False, False]]
    )
    fast = _pairwise_adjacency(members, mask, friend_sets, num_users=4)
    for group in range(2):
        size = int(mask[group].sum())
        reference = _local_adjacency(members[group, :size], friend_sets)
        np.testing.assert_array_equal(fast[group, :size, :size], reference)
    # Group 0: 0->1 held by the earlier member => connected.
    assert fast[0, 0, 1] and fast[0, 1, 0]
    # Group 1: only 3->2 exists, but 2 sits first and holds no edge.
    assert not fast[1].any()


def test_no_friendships_at_all():
    friend_sets = [set(), set()]
    members = np.array([[0, 1]], dtype=np.int64)
    mask = np.ones((1, 2), dtype=bool)
    fast = _pairwise_adjacency(members, mask, friend_sets, num_users=2)
    assert not fast.any()


def test_padding_rows_never_connect():
    """Padded slots reuse user id 0; the mask must keep phantom pairs
    out of the adjacency even when user 0 has many friends."""
    friend_sets = [{1, 2}, {0}, {0}]
    members = np.array([[1, 2, 0, 0]], dtype=np.int64)  # two padded slots
    mask = np.array([[True, True, False, False]])
    fast = _pairwise_adjacency(members, mask, friend_sets, num_users=3)
    assert not fast[0, :, 2:].any()
    assert not fast[0, 2:, :].any()


def test_chunking_invariant():
    world = generate(TINY_CONFIG)
    dataset = world.dataset
    batcher = GroupBatcher(dataset)
    one_chunk = _pairwise_adjacency(
        batcher._members,
        batcher._mask,
        dataset.friend_set(),
        dataset.num_users,
        chunk_groups=10_000,
    )
    tiny_chunks = _pairwise_adjacency(
        batcher._members,
        batcher._mask,
        dataset.friend_set(),
        dataset.num_users,
        chunk_groups=3,
    )
    np.testing.assert_array_equal(one_chunk, tiny_chunks)
