"""Table I statistics, dataset (de)serialization, presets."""

import numpy as np
import pytest

from repro.data import (
    douban_like,
    load_dataset,
    save_dataset,
    table1_statistics,
    yelp_like,
)
from repro.data.stats import format_table1


class TestStatistics:
    def test_all_seven_rows(self, tiny_world):
        stats = table1_statistics(tiny_world.dataset)
        assert set(stats) == {
            "# Users",
            "# Items/Events",
            "# Groups",
            "Avg. group size",
            "Avg. # interactions per user",
            "Avg. # friends per user",
            "Avg. # interactions per group",
        }

    def test_counts_match_dataset(self, tiny_world):
        dataset = tiny_world.dataset
        stats = table1_statistics(dataset)
        assert stats["# Users"] == dataset.num_users
        assert stats["Avg. group size"] == pytest.approx(
            dataset.group_sizes().mean()
        )

    def test_format_contains_all_rows(self, tiny_world):
        stats = {"tiny": table1_statistics(tiny_world.dataset)}
        text = format_table1(stats)
        assert "# Users" in text
        assert "tiny" in text
        assert "Avg. group size" in text


class TestIO:
    def test_roundtrip(self, tiny_world, tmp_path):
        original = tiny_world.dataset
        path = tmp_path / "dataset.npz"
        save_dataset(original, path)
        loaded = load_dataset(path)
        assert loaded.num_users == original.num_users
        assert loaded.name == original.name
        np.testing.assert_array_equal(loaded.user_item, original.user_item)
        np.testing.assert_array_equal(loaded.group_item, original.group_item)
        np.testing.assert_array_equal(loaded.social, original.social)
        assert len(loaded.group_members) == len(original.group_members)
        for left, right in zip(loaded.group_members, original.group_members):
            np.testing.assert_array_equal(left, right)

    def test_loaded_dataset_validates(self, tiny_world, tmp_path):
        path = tmp_path / "d.npz"
        save_dataset(tiny_world.dataset, path)
        load_dataset(path).validate()


class TestPresets:
    def test_yelp_statistics_match_table1(self):
        stats = table1_statistics(yelp_like(scale=0.01).dataset)
        assert stats["Avg. group size"] == pytest.approx(4.45, abs=0.5)
        assert stats["Avg. # interactions per user"] == pytest.approx(13.98, abs=1.5)
        assert stats["Avg. # friends per user"] == pytest.approx(20.77, abs=1.0)
        assert stats["Avg. # interactions per group"] == pytest.approx(1.12, abs=0.25)

    def test_douban_statistics_match_table1(self):
        stats = table1_statistics(douban_like(scale=0.01).dataset)
        assert stats["Avg. group size"] == pytest.approx(4.84, abs=0.5)
        assert stats["Avg. # interactions per user"] == pytest.approx(25.22, abs=2.0)
        assert stats["Avg. # friends per user"] == pytest.approx(40.86, abs=1.5)
        assert stats["Avg. # interactions per group"] == pytest.approx(1.47, abs=0.3)

    def test_douban_has_more_items_than_users(self):
        world = douban_like(scale=0.01)
        assert world.dataset.num_items > world.dataset.num_users

    def test_yelp_has_fewer_items_than_users(self):
        world = yelp_like(scale=0.01)
        assert world.dataset.num_items < world.dataset.num_users

    def test_scale_changes_counts(self):
        small = yelp_like(scale=0.005).dataset
        large = yelp_like(scale=0.02).dataset
        assert large.num_users > small.num_users
