"""Negative sampling and BPR triple batching."""

import numpy as np
import pytest

from repro.data.sampling import (
    NegativeSampler,
    bpr_triple_batches,
    sample_evaluation_candidates,
)


class TestNegativeSampler:
    def test_negatives_never_observed(self):
        interacted = [{0, 1, 2}, {3}]
        sampler = NegativeSampler(interacted, num_items=10, rng=0)
        for __ in range(20):
            for item in sampler.sample(0, 5):
                assert item not in interacted[0]

    def test_requested_count(self):
        sampler = NegativeSampler([{0}], num_items=10, rng=0)
        assert sampler.sample(0, 7).shape == (7,)

    def test_sample_many_shape(self):
        sampler = NegativeSampler([{0}, {1}, {2}], num_items=10, rng=0)
        out = sampler.sample_many(np.array([0, 2, 1]), 4)
        assert out.shape == (3, 4)

    def test_exhausted_entity_raises(self):
        sampler = NegativeSampler([set(range(5))], num_items=5, rng=0)
        with pytest.raises(ValueError):
            sampler.sample(0, 1)

    def test_single_free_item_found(self):
        sampler = NegativeSampler([set(range(9))], num_items=10, rng=0)
        np.testing.assert_array_equal(sampler.sample(0, 3), [9, 9, 9])

    def test_needs_two_items(self):
        with pytest.raises(ValueError):
            NegativeSampler([set()], num_items=1)


class TestBprTripleBatches:
    def setup_method(self):
        self.edges = np.array([[0, 1], [1, 2], [0, 3], [2, 4]])
        self.sampler = NegativeSampler(
            [{1, 3}, {2}, {4}], num_items=10, rng=0
        )

    def test_covers_all_edges(self):
        seen = []
        for entities, positives, __ in bpr_triple_batches(
            self.edges, self.sampler, batch_size=2, rng=0
        ):
            seen.extend(zip(entities.tolist(), positives.tolist()))
        assert sorted(seen) == sorted(map(tuple, self.edges))

    def test_negatives_expansion(self):
        for entities, positives, negatives in bpr_triple_batches(
            self.edges, self.sampler, batch_size=4, negatives_per_positive=3, rng=0
        ):
            assert len(entities) == len(positives) == len(negatives) == 12

    def test_negative_validity(self):
        interacted = [{1, 3}, {2}, {4}]
        for entities, __, negatives in bpr_triple_batches(
            self.edges, self.sampler, batch_size=4, negatives_per_positive=2, rng=0
        ):
            for entity, negative in zip(entities, negatives):
                assert negative not in interacted[entity]

    def test_empty_edges_yields_nothing(self):
        batches = list(
            bpr_triple_batches(np.empty((0, 2), dtype=np.int64), self.sampler)
        )
        assert batches == []

    def test_shuffling_differs_by_seed(self):
        first = [
            p.tolist()
            for __, p, __n in bpr_triple_batches(self.edges, self.sampler, 2, rng=0)
        ]
        second = [
            p.tolist()
            for __, p, __n in bpr_triple_batches(self.edges, self.sampler, 2, rng=5)
        ]
        assert first != second


class TestEvaluationCandidates:
    def test_excludes_interacted(self):
        interacted = [set(range(50))]
        candidates = sample_evaluation_candidates(0, interacted, 100, 30, rng=0)
        assert len(candidates) == 30
        assert not set(candidates.tolist()) & interacted[0]

    def test_no_duplicates(self):
        candidates = sample_evaluation_candidates(0, [{1}], 200, 100, rng=0)
        assert len(set(candidates.tolist())) == 100

    def test_caps_at_available(self):
        candidates = sample_evaluation_candidates(0, [set(range(95))], 100, 100, rng=0)
        assert len(candidates) == 5

    def test_no_unseen_items_raises(self):
        with pytest.raises(ValueError):
            sample_evaluation_candidates(0, [set(range(10))], 10, 5, rng=0)
