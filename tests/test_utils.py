"""Shared utility helpers."""

import numpy as np
import pytest

from repro.utils import batched, ensure_rng, shuffled_batches


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        assert ensure_rng(5).random() == ensure_rng(5).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestBatched:
    def test_exact_division(self):
        batches = list(batched(np.arange(6), 2))
        assert len(batches) == 3
        np.testing.assert_array_equal(batches[0], [0, 1])

    def test_remainder(self):
        batches = list(batched(np.arange(5), 2))
        assert len(batches) == 3
        np.testing.assert_array_equal(batches[-1], [4])

    def test_batch_larger_than_input(self):
        batches = list(batched(np.arange(3), 10))
        assert len(batches) == 1

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batched(np.arange(3), 0))

    def test_empty_input(self):
        assert list(batched(np.array([], dtype=int), 4)) == []


class TestShuffledBatches:
    def test_covers_all_indices_once(self):
        seen = np.concatenate(list(shuffled_batches(10, 3, rng=0)))
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_deterministic_with_seed(self):
        first = [b.tolist() for b in shuffled_batches(8, 3, rng=1)]
        second = [b.tolist() for b in shuffled_batches(8, 3, rng=1)]
        assert first == second

    def test_shuffles(self):
        order = np.concatenate(list(shuffled_batches(50, 50, rng=0)))
        assert not np.array_equal(order, np.arange(50))


class TestVersion:
    def test_package_exports_version(self):
        import repro

        assert repro.__version__
