"""BPR loss, trainers, the two-stage schedule, callbacks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import GroupSAConfig
from repro.training import (
    GroupSATrainer,
    History,
    TrainingConfig,
    bpr_accuracy,
    bpr_loss,
    build_model,
    fit_groupsa,
    train_groupsa,
)
from repro.training.callbacks import EpochLog, print_progress
from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING


class TestBprLoss:
    def test_perfect_ranking_near_zero(self):
        positive = Tensor(np.full(4, 50.0))
        negative = Tensor(np.full(4, -50.0))
        assert bpr_loss(positive, negative).item() < 1e-9

    def test_reversed_ranking_large(self):
        positive = Tensor(np.full(4, -10.0))
        negative = Tensor(np.full(4, 10.0))
        assert bpr_loss(positive, negative).item() > 10.0

    def test_equal_scores_ln2(self):
        scores = Tensor(np.zeros(8))
        assert bpr_loss(scores, scores).item() == pytest.approx(np.log(2.0))

    def test_extreme_margins_stable(self):
        positive = Tensor(np.array([1e6]))
        negative = Tensor(np.array([-1e6]))
        assert np.isfinite(bpr_loss(positive, negative).item())
        assert np.isfinite(bpr_loss(negative, positive).item())

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bpr_loss(Tensor(np.zeros(3)), Tensor(np.zeros(4)))

    def test_gradient_direction(self):
        positive = Tensor(np.zeros(4), requires_grad=True)
        negative = Tensor(np.zeros(4), requires_grad=True)
        bpr_loss(positive, negative).backward()
        assert (positive.grad < 0).all()  # increase positives
        assert (negative.grad > 0).all()  # decrease negatives

    def test_accuracy(self):
        positive = Tensor(np.array([1.0, 0.0, 2.0, -1.0]))
        negative = Tensor(np.array([0.0, 1.0, 1.0, -2.0]))
        assert bpr_accuracy(positive, negative) == pytest.approx(0.75)


class TestTrainer:
    def test_histories_recorded(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        trainer = GroupSATrainer(model, tiny_split, batcher, TINY_TRAINING)
        trainer.train_user_task(epochs=2)
        trainer.train_group_task(epochs=3)
        assert len(trainer.history.losses("user")) == 2
        assert len(trainer.history.losses("group")) == 3

    def test_epoch_numbering_continues(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        trainer = GroupSATrainer(model, tiny_split, batcher, TINY_TRAINING)
        trainer.train_user_task(epochs=1)
        trainer.train_user_task(epochs=1)
        epochs = [e.epoch for e in trainer.history.epochs if e.task == "user"]
        assert epochs == [1, 2]

    def test_parameters_change_during_training(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        before = model.user_embedding.weight.data.copy()
        trainer = GroupSATrainer(model, tiny_split, batcher, TINY_TRAINING)
        trainer.train_user_task(epochs=1)
        assert not np.allclose(before, model.user_embedding.weight.data)

    def test_invalid_optimizer(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        config = TrainingConfig(optimizer="rmsprop")
        with pytest.raises(ValueError):
            GroupSATrainer(model, tiny_split, batcher, config)

    def test_callback_invoked(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        trainer = GroupSATrainer(model, tiny_split, batcher, TINY_TRAINING)
        seen = []
        trainer.train_user_task(epochs=2, callback=seen.append)
        assert len(seen) == 2
        assert all(isinstance(log, EpochLog) for log in seen)


class TestTwoStage:
    def test_train_groupsa_returns_history(self, tiny_split):
        model, batcher, history = train_groupsa(
            tiny_split, TINY_MODEL_CONFIG, TINY_TRAINING
        )
        assert history.losses("user")
        assert history.losses("group")

    def test_group_g_skips_user_task(self, tiny_split):
        from repro.core import variant_config

        config = variant_config("Group-G", TINY_MODEL_CONFIG)
        __, __b, history = train_groupsa(tiny_split, config, TINY_TRAINING)
        assert not history.losses("user")
        assert history.losses("group")

    def test_tower_initialization_copies_user_tower(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        training = TrainingConfig(
            user_epochs=1,
            group_epochs=0,
            init_group_tower_from_user=True,
            interleave_user_every=0,
            seed=0,
        )
        fit_groupsa(model, tiny_split, batcher, training)
        for (na, pa), (nb, pb) in zip(
            model.user_tower.named_parameters(), model.group_tower.named_parameters()
        ):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_interleaving_replays_user_epochs(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        training = TrainingConfig(
            user_epochs=2, group_epochs=4, interleave_user_every=2, seed=0
        )
        history = fit_groupsa(model, tiny_split, batcher, training)
        # 2 warmup user epochs + 2 interleaved replays.
        assert len(history.losses("user")) == 4
        assert len(history.losses("group")) == 4

    def test_closeness_variants_build(self, tiny_split):
        for closeness in ("direct", "full", "common-neighbours", "pagerank"):
            config = TINY_MODEL_CONFIG.variant(closeness=closeness)
            model, batcher = build_model(tiny_split, config)
            assert batcher is not None


class TestHistory:
    def test_final_loss(self):
        history = History()
        history.record(EpochLog("user", 1, 0.8, 0.5))
        history.record(EpochLog("user", 2, 0.4, 0.7))
        assert history.final_loss("user") == 0.4

    def test_final_loss_missing_task(self):
        with pytest.raises(ValueError):
            History().final_loss("user")

    def test_print_progress(self, capsys):
        print_progress(EpochLog("group", 3, 0.1234, 0.9))
        captured = capsys.readouterr().out
        assert "group" in captured and "0.1234" in captured
