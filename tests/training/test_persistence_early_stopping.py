"""Checkpointing and early stopping."""

import numpy as np
import pytest

from repro.persistence import checkpoint_info, load_model, roundtrip_equal, save_model
from repro.training.early_stopping import ValidationMonitor, fit_with_early_stopping
from repro.training.two_stage import build_model
from repro.training.trainer import TrainingConfig
from repro.tuning import validation_task
from tests.conftest import TINY_MODEL_CONFIG


class TestPersistence:
    def test_roundtrip_weights_and_scores(self, trained_tiny_model, tmp_path):
        model, batcher, __ = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert roundtrip_equal(model, loaded)
        users, items = np.arange(6), np.arange(6)
        np.testing.assert_allclose(
            model.score_user_items(users, items),
            loaded.score_user_items(users, items),
        )

    def test_roundtrip_group_scores(self, trained_tiny_model, tmp_path):
        model, batcher, __ = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        batch = batcher.batch([0, 1])
        np.testing.assert_allclose(
            model.score_group_items(batch, np.array([0, 1])),
            loaded.score_group_items(batch, np.array([0, 1])),
        )

    def test_config_preserved(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        assert load_model(path).config == model.config

    def test_checkpoint_info(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        config, num_users, num_items = checkpoint_info(path)
        assert config == model.config
        assert num_users == model.num_users
        assert num_items == model.num_items

    def test_tables_roundtrip(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        np.testing.assert_array_equal(
            loaded.top_neighbours.items, model.top_neighbours.items
        )

    def test_version_check(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        data = dict(np.load(path, allow_pickle=False))
        data["__version__"] = np.array(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_model(path)

    def test_roundtrip_equal_detects_difference(self, trained_tiny_model, tiny_split):
        from repro.core import GroupSA

        model, __, __h = trained_tiny_model
        train = tiny_split.train
        other = GroupSA(train.num_users, train.num_items, model.config)
        assert not roundtrip_equal(model, other)


class TestEarlyStopping:
    def test_monitor_tracks_best(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model
        monitor = ValidationMonitor(
            model=model,
            batcher=batcher,
            task=validation_task(tiny_split, num_candidates=10),
            patience=2,
        )
        stop_first = monitor.check()
        assert not stop_first
        assert monitor.best_value == monitor.history[0]

    def test_monitor_stops_after_patience(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model
        monitor = ValidationMonitor(
            model=model,
            batcher=batcher,
            task=validation_task(tiny_split, num_candidates=10),
            patience=2,
        )
        # Deterministic model + frozen task => identical metric values,
        # so "no improvement" accumulates.
        assert not monitor.check()
        assert not monitor.check()
        assert monitor.check()

    def test_restore_best(self, trained_tiny_model, tiny_split):
        model, batcher, __ = trained_tiny_model
        monitor = ValidationMonitor(
            model=model,
            batcher=batcher,
            task=validation_task(tiny_split, num_candidates=10),
        )
        monitor.check()
        best = model.user_embedding.weight.data.copy()
        model.user_embedding.weight.data += 100.0
        monitor.restore_best()
        np.testing.assert_array_equal(model.user_embedding.weight.data, best)

    def test_fit_with_early_stopping_runs(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        training = TrainingConfig(
            user_epochs=2, group_epochs=2, batch_size=64, seed=0
        )
        history, monitor = fit_with_early_stopping(
            model,
            tiny_split,
            batcher,
            training,
            patience=1,
            check_every=1,
            max_group_epochs=6,
            num_candidates=10,
        )
        assert monitor.history  # at least one validation check happened
        assert history.losses("group")

    def test_requires_validation_data(self, tiny_world):
        from repro.data import split_interactions

        split = split_interactions(tiny_world.dataset, validation_fraction=0.0, rng=0)
        model, batcher = build_model(split, TINY_MODEL_CONFIG)
        with pytest.raises(ValueError, match="validation"):
            fit_with_early_stopping(model, split, batcher)
