"""Trainer option coverage: negatives, optimizers, variant training."""

import numpy as np
import pytest

from repro.training import GroupSATrainer, TrainingConfig
from repro.training.two_stage import build_model
from tests.conftest import TINY_MODEL_CONFIG


class TestNegativesPerPositive:
    def test_multiple_negatives_train(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        config = TrainingConfig(
            user_epochs=1, group_epochs=1, negatives_per_positive=3,
            batch_size=64, seed=0,
        )
        trainer = GroupSATrainer(model, tiny_split, batcher, config)
        trainer.train_user_task(epochs=1)
        trainer.train_group_task(epochs=1)
        assert len(trainer.history.epochs) == 2

    def test_loss_finite_with_many_negatives(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        config = TrainingConfig(
            user_epochs=1, group_epochs=1, negatives_per_positive=5,
            batch_size=32, seed=0,
        )
        trainer = GroupSATrainer(model, tiny_split, batcher, config)
        trainer.train_user_task(epochs=1)
        assert np.isfinite(trainer.history.final_loss("user"))


class TestOptimizerChoice:
    def test_sgd_option_trains(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        config = TrainingConfig(
            user_epochs=2, group_epochs=1, optimizer="sgd",
            learning_rate=0.05, batch_size=64, seed=0,
        )
        trainer = GroupSATrainer(model, tiny_split, batcher, config)
        trainer.train_user_task()
        losses = trainer.history.losses("user")
        assert losses[-1] <= losses[0] + 0.05


class TestVariantTraining:
    @pytest.mark.parametrize(
        "variant", ["Group-A", "Group-S", "Group-I", "Group-F", "Group-G"]
    )
    def test_every_variant_trains_and_scores(self, tiny_split, variant):
        from repro.core import variant_config
        from repro.training import train_groupsa
        from tests.conftest import TINY_TRAINING

        config = variant_config(variant, TINY_MODEL_CONFIG)
        model, batcher, history = train_groupsa(tiny_split, config, TINY_TRAINING)
        scores = model.score_group_items(batcher.batch([0, 1]), np.array([0, 1]))
        assert np.isfinite(scores).all()
        if config.use_user_task:
            user_scores = model.score_user_items(np.array([0]), np.array([0]))
            assert np.isfinite(user_scores).all()

    def test_num_heads_variant_trains(self, tiny_split):
        from repro.training import train_groupsa
        from tests.conftest import TINY_TRAINING

        config = TINY_MODEL_CONFIG.variant(num_heads=2, key_dim=8, value_dim=8)
        model, batcher, __ = train_groupsa(tiny_split, config, TINY_TRAINING)
        scores = model.score_group_items(batcher.batch([0]), np.array([0]))
        assert np.isfinite(scores).all()

    def test_multilayer_voting_trains(self, tiny_split):
        from repro.training import train_groupsa
        from tests.conftest import TINY_TRAINING

        config = TINY_MODEL_CONFIG.variant(num_attention_layers=3)
        model, __, history = train_groupsa(tiny_split, config, TINY_TRAINING)
        assert np.isfinite(history.final_loss("group"))
