"""CheckpointManager retention policies and trainer state round-trips."""

import numpy as np
import pytest

from repro.persistence import checkpoint_metadata
from repro.training import CheckpointManager, GroupSATrainer, TrainingConfig
from repro.training.checkpointing import SchedulePosition
from repro.training.two_stage import build_model
from tests.conftest import TINY_MODEL_CONFIG


@pytest.fixture
def tiny_model(tiny_split):
    return build_model(tiny_split, TINY_MODEL_CONFIG)


class TestRetention:
    def test_keeps_last_n(self, tiny_model, tmp_path):
        model, __ = tiny_model
        manager = CheckpointManager(tmp_path, keep_last=3)
        for __i in range(6):
            manager.save(model)
        names = [path.name for path in manager.checkpoints()]
        assert names == ["ckpt-000004.npz", "ckpt-000005.npz", "ckpt-000006.npz"]
        assert manager.latest_path().name == "ckpt-000006.npz"

    def test_best_by_metric_survives_pruning(self, tiny_model, tmp_path):
        model, __ = tiny_model
        manager = CheckpointManager(tmp_path, keep_last=2, mode="min")
        for metric in (0.9, 0.2, 0.5, 0.7, 0.8):
            manager.save(model, metric=metric)
        # The best (0.2) checkpoint was pruned from the numbered set but
        # survives as best.npz with its metric recorded.
        assert manager.best_value == 0.2
        assert checkpoint_metadata(manager.best_path())["metric"] == 0.2

    def test_mode_max(self, tiny_model, tmp_path):
        model, __ = tiny_model
        manager = CheckpointManager(tmp_path, mode="max")
        for metric in (0.1, 0.9, 0.4):
            manager.save(model, metric=metric)
        assert manager.best_value == 0.9

    def test_restart_continues_numbering_and_best(self, tiny_model, tmp_path):
        model, __ = tiny_model
        manager = CheckpointManager(tmp_path, keep_last=2)
        manager.save(model, metric=0.5)
        manager.save(model, metric=0.8)
        reopened = CheckpointManager(tmp_path, keep_last=2)
        assert reopened.best_value == 0.5
        path = reopened.save(model, metric=0.9)
        assert path.name == "ckpt-000003.npz"
        assert reopened.best_value == 0.5

    def test_invalid_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointManager(tmp_path, keep_last=0)
        with pytest.raises(ValueError, match="mode"):
            CheckpointManager(tmp_path, mode="median")

    def test_load_latest_empty_directory(self, tiny_model, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.load_latest() is None
        assert manager.latest_path() is None
        assert manager.best_path() is None


class TestTrainerStateRoundtrip:
    def test_full_trainer_state_roundtrip(self, tiny_split, tmp_path):
        training = TrainingConfig(user_epochs=1, group_epochs=1, batch_size=64, seed=3)
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        trainer = GroupSATrainer(model, tiny_split, batcher, training)
        trainer.train_user_task(epochs=1)
        trainer.train_group_task(epochs=1)

        manager = CheckpointManager(tmp_path)
        schedule = {"position": {"user_epochs_done": 1}}
        manager.save(model, trainer_state=trainer.state_dict(), schedule=schedule)

        restored_model, restored_batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        loaded, state = manager.load_latest(model=restored_model)
        assert loaded is restored_model
        restored = GroupSATrainer(restored_model, tiny_split, restored_batcher, training)
        restored.load_state_dict(state.trainer)

        assert restored._epoch_counter == trainer._epoch_counter
        assert restored._rng.bit_generator.state == trainer._rng.bit_generator.state
        assert restored.optimizer._step_count == trainer.optimizer._step_count
        assert [log.loss for log in restored.history.epochs] == [
            log.loss for log in trainer.history.epochs
        ]
        assert state.schedule == schedule
        # The restored trainer samples the exact same negatives next.
        np.testing.assert_array_equal(
            restored.user_sampler.sample(0, 8), trainer.user_sampler.sample(0, 8)
        )

    def test_schedule_position_defaults(self):
        position = SchedulePosition()
        assert position.user_epochs_done == 0
        assert not position.tower_initialized
        assert position.group_epochs_done == 0
