"""Fault injection: killed runs resume bit-exactly, checkpoints never corrupt.

The acceptance property for the resumable-training subsystem: a run
killed at any checkpoint boundary (mid-stage-1, between stages,
mid-stage-2, or mid-epoch) and resumed in a *fresh process* (simulated
by rebuilding model/trainer from scratch) produces the bit-identical
final ``state_dict()`` of an uninterrupted run with the same
``TrainingConfig`` and seed.
"""

import dataclasses

import numpy as np
import pytest

from repro.training import TrainingConfig
from repro.training.trainer import GroupSATrainer
from repro.training.two_stage import build_model, fit_groupsa
from tests.conftest import TINY_MODEL_CONFIG

TRAINING = TrainingConfig(
    user_epochs=2,
    group_epochs=4,
    batch_size=16,
    learning_rate=0.02,
    seed=11,
    interleave_user_every=2,
)


class Killed(RuntimeError):
    """Stands in for SIGKILL: aborts the run at a chosen point."""


def _crash_after(task, epoch):
    def callback(log):
        if log.task == task and log.epoch == epoch:
            raise Killed(f"{task} epoch {epoch}")

    return callback


def _uninterrupted_weights(tiny_split, config=TINY_MODEL_CONFIG, training=TRAINING):
    model, batcher = build_model(tiny_split, config)
    fit_groupsa(model, tiny_split, batcher, training)
    return model.state_dict()


def _resume_and_finish(tiny_split, checkpoint_dir, config=TINY_MODEL_CONFIG,
                       training=TRAINING):
    """Fresh process simulation: rebuild everything, then resume."""
    model, batcher = build_model(tiny_split, config)
    history = fit_groupsa(
        model, tiny_split, batcher, training,
        checkpoint_dir=checkpoint_dir, resume=True,
    )
    return model, history


def _assert_bit_exact(state, reference):
    assert set(state) == set(reference)
    for name in reference:
        np.testing.assert_array_equal(state[name], reference[name])


class TestBitExactResume:
    def test_killed_mid_stage_two(self, tiny_split, tmp_path):
        reference = _uninterrupted_weights(tiny_split)
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        with pytest.raises(Killed):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                callback=_crash_after("group", 3),
                checkpoint_dir=tmp_path,
            )
        resumed, history = _resume_and_finish(tiny_split, tmp_path)
        _assert_bit_exact(resumed.state_dict(), reference)
        # The restored history covers the whole schedule, not just the
        # epochs after the crash.
        assert len(history.losses("group")) == TRAINING.group_epochs

    def test_killed_mid_stage_one(self, tiny_split, tmp_path):
        reference = _uninterrupted_weights(tiny_split)
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        with pytest.raises(Killed):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                callback=_crash_after("user", 2),
                checkpoint_dir=tmp_path,
            )
        resumed, __ = _resume_and_finish(tiny_split, tmp_path)
        _assert_bit_exact(resumed.state_dict(), reference)

    def test_killed_between_stages(self, tiny_split, tmp_path):
        """Crash on the first group epoch: the run restarts after the
        stage boundary and must not redo stage 1 or the tower transfer."""
        reference = _uninterrupted_weights(tiny_split)
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        with pytest.raises(Killed):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                callback=_crash_after("group", 1),
                checkpoint_dir=tmp_path,
            )
        resumed, __ = _resume_and_finish(tiny_split, tmp_path)
        _assert_bit_exact(resumed.state_dict(), reference)

    def test_killed_mid_epoch(self, tiny_split, tmp_path, monkeypatch):
        """Die in the middle of a gradient step, not at an epoch edge."""
        reference = _uninterrupted_weights(tiny_split)
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        real_step = GroupSATrainer._group_step
        calls = {"count": 0}

        def dying_step(self, *args):
            calls["count"] += 1
            if calls["count"] == 4:
                raise Killed("mid group epoch")
            return real_step(self, *args)

        monkeypatch.setattr(GroupSATrainer, "_group_step", dying_step)
        with pytest.raises(Killed):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING, checkpoint_dir=tmp_path
            )
        monkeypatch.undo()
        assert calls["count"] == 4  # died mid-run, after some progress
        resumed, __ = _resume_and_finish(tiny_split, tmp_path)
        _assert_bit_exact(resumed.state_dict(), reference)

    def test_bit_exact_with_dropout(self, tiny_split, tmp_path):
        """Dropout draws from per-module generators; resume must restore
        them too for the masks to replay identically."""
        config = dataclasses.replace(TINY_MODEL_CONFIG, dropout=0.2)
        reference = _uninterrupted_weights(tiny_split, config=config)
        model, batcher = build_model(tiny_split, config)
        with pytest.raises(Killed):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                callback=_crash_after("group", 2),
                checkpoint_dir=tmp_path,
            )
        resumed, __ = _resume_and_finish(tiny_split, tmp_path, config=config)
        _assert_bit_exact(resumed.state_dict(), reference)

    def test_checkpointing_does_not_perturb_training(self, tiny_split, tmp_path):
        """Writing checkpoints must not consume randomness: a checkpointed
        run matches a plain one exactly."""
        reference = _uninterrupted_weights(tiny_split)
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        fit_groupsa(
            model, tiny_split, batcher, TRAINING,
            checkpoint_dir=tmp_path, checkpoint_every=2,
        )
        _assert_bit_exact(model.state_dict(), reference)

    def test_resume_of_finished_run_is_stable(self, tiny_split, tmp_path):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        fit_groupsa(model, tiny_split, batcher, TRAINING, checkpoint_dir=tmp_path)
        resumed, history = _resume_and_finish(tiny_split, tmp_path)
        _assert_bit_exact(resumed.state_dict(), model.state_dict())
        assert len(history.losses("group")) == TRAINING.group_epochs


class TestResumeGuards:
    def test_resume_requires_checkpoint_dir(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            fit_groupsa(model, tiny_split, batcher, TRAINING, resume=True)

    def test_resume_rejects_changed_training_config(self, tiny_split, tmp_path):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        with pytest.raises(Killed):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                callback=_crash_after("group", 2),
                checkpoint_dir=tmp_path,
            )
        other = dataclasses.replace(TRAINING, learning_rate=0.5)
        fresh, fresh_batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        with pytest.raises(ValueError, match="TrainingConfig"):
            fit_groupsa(
                fresh, tiny_split, fresh_batcher, other,
                checkpoint_dir=tmp_path, resume=True,
            )

    def test_resume_rejects_weight_only_checkpoint(self, tiny_split, tmp_path):
        from repro.persistence import save_model

        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        save_model(model, tmp_path / "ckpt-000001.npz")
        with pytest.raises(ValueError, match="weight-only"):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                checkpoint_dir=tmp_path, resume=True,
            )

    def test_resume_with_empty_directory_trains_from_scratch(
        self, tiny_split, tmp_path
    ):
        reference = _uninterrupted_weights(tiny_split)
        resumed, __ = _resume_and_finish(tiny_split, tmp_path)
        _assert_bit_exact(resumed.state_dict(), reference)

    def test_invalid_checkpoint_every(self, tiny_split, tmp_path):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        with pytest.raises(ValueError, match="checkpoint_every"):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                checkpoint_dir=tmp_path, checkpoint_every=0,
            )


class TestEmptyTaskGuard:
    def test_raises_instead_of_logging_zero_loss(self, tiny_split):
        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        trainer = GroupSATrainer(model, tiny_split, batcher, TRAINING)
        empty = np.empty((0, 2), dtype=np.int64)
        with pytest.raises(ValueError, match="task 'user'"):
            trainer._run_epoch("user", empty, trainer._user_step)
        with pytest.raises(ValueError, match="task 'group'"):
            trainer._run_epoch("group", empty, trainer._group_step)
        # Nothing was recorded for the refused epochs.
        assert not trainer.history.epochs
        assert trainer._epoch_counter == {"user": 0, "group": 0}
