"""Checkpoint format v2: atomic writes, path normalization, forward
compatibility, v1 back-compat, and error paths."""

import json

import numpy as np
import pytest

from repro import persistence
from repro.persistence import (
    checkpoint_info,
    checkpoint_metadata,
    load_checkpoint,
    load_model,
    roundtrip_equal,
    save_checkpoint,
    save_model,
)


def _rewrite(path, **overrides):
    """Rewrite an existing archive with some entries replaced/removed."""
    data = dict(np.load(path, allow_pickle=False))
    for key, value in overrides.items():
        if value is None:
            data.pop(key, None)
        else:
            data[key] = value
    np.savez_compressed(path, **data)


class TestPathNormalization:
    def test_suffixless_save_then_load(self, trained_tiny_model, tmp_path):
        """Regression: np.savez silently appends .npz, so a suffix-less
        save followed by a suffix-less load used to FileNotFoundError."""
        model, __, __h = trained_tiny_model
        target = tmp_path / "ckpt"
        save_model(model, target)
        assert (tmp_path / "ckpt.npz").exists()
        assert roundtrip_equal(model, load_model(target))

    def test_suffixless_checkpoint_info_roundtrip(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        save_model(model, tmp_path / "ckpt")
        config, num_users, num_items = checkpoint_info(tmp_path / "ckpt")
        assert config == model.config
        assert (num_users, num_items) == (model.num_users, model.num_items)

    def test_explicit_npz_suffix_unchanged(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        save_model(model, tmp_path / "model.npz")
        assert (tmp_path / "model.npz").exists()
        assert not (tmp_path / "model.npz.npz").exists()


class TestForwardCompatibility:
    def _with_extra_config_key(self, model, path):
        save_model(model, path)
        raw = json.loads(str(np.load(path)["__config__"]))
        raw["a_future_knob"] = 123
        _rewrite(path, __config__=np.array(json.dumps(raw)))

    def test_load_model_drops_unknown_config_keys(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        self._with_extra_config_key(model, path)
        with pytest.warns(RuntimeWarning, match="a_future_knob"):
            loaded = load_model(path)
        assert loaded.config == model.config
        assert roundtrip_equal(model, loaded)

    def test_checkpoint_info_drops_unknown_config_keys(
        self, trained_tiny_model, tmp_path
    ):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        self._with_extra_config_key(model, path)
        with pytest.warns(RuntimeWarning, match="a_future_knob"):
            config, __, __i = checkpoint_info(path)
        assert config == model.config


class TestVersions:
    def test_v1_weight_only_still_loads(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        _rewrite(path, __version__=np.array(1))
        loaded, state = load_checkpoint(path)
        assert roundtrip_equal(model, loaded)
        assert state is None

    def test_future_version_rejected_everywhere(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        _rewrite(path, __version__=np.array(99))
        for reader in (load_model, checkpoint_info, checkpoint_metadata):
            with pytest.raises(ValueError, match="version 99"):
                reader(path)

    def test_missing_param_key_rejected(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        name = next(iter(model.state_dict()))
        _rewrite(path, **{f"param/{name}": None})
        with pytest.raises(KeyError, match="missing"):
            load_model(path)


class TestAtomicWrites:
    def test_failed_serialization_preserves_existing(
        self, trained_tiny_model, tmp_path, monkeypatch
    ):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        reference = model.state_dict()

        def exploding_savez(handle, **payload):
            handle.write(b"partial garbage that must never reach the target")
            raise IOError("disk full")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(IOError, match="disk full"):
            save_model(model, path)
        monkeypatch.undo()
        survivor = load_model(path)
        for name, weights in survivor.state_dict().items():
            np.testing.assert_array_equal(weights, reference[name])
        # The aborted attempt must not leave temporary files behind.
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_failed_replace_preserves_existing(
        self, trained_tiny_model, tmp_path, monkeypatch
    ):
        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        reference = model.state_dict()

        def exploding_replace(src, dst):
            raise OSError("crash between write and rename")

        monkeypatch.setattr(persistence.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="crash between"):
            save_model(model, path)
        monkeypatch.undo()
        survivor = load_model(path)
        for name, weights in survivor.state_dict().items():
            np.testing.assert_array_equal(weights, reference[name])
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]


class TestTrainingStatePayload:
    def test_weight_only_checkpoint_has_no_state(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        save_model(model, tmp_path / "model.npz")
        __, state = load_checkpoint(tmp_path / "model.npz")
        assert state is None
        assert checkpoint_metadata(tmp_path / "model.npz") == {}

    def test_schedule_and_metric_roundtrip(self, trained_tiny_model, tmp_path):
        model, __, __h = trained_tiny_model
        path = save_checkpoint(
            model,
            tmp_path / "model.npz",
            schedule={"position": {"group_epochs_done": 7}},
            metric=0.25,
        )
        __, state = load_checkpoint(path)
        assert state.schedule == {"position": {"group_epochs_done": 7}}
        assert state.metric == 0.25
        assert checkpoint_metadata(path)["metric"] == 0.25

    def test_wrong_world_size_rejected(self, trained_tiny_model, tmp_path):
        from repro.core import GroupSA

        model, __, __h = trained_tiny_model
        path = tmp_path / "model.npz"
        save_model(model, path)
        other = GroupSA(model.num_users + 1, model.num_items, model.config)
        with pytest.raises(ValueError, match="world"):
            load_checkpoint(path, model=other)
