"""Fused ops and dtype policy at training scale.

Acceptance gates for the fused attention kernels:

- a seeded two-stage ``fit_groupsa`` run with dropout > 0 produces
  **bit-identical** final weights with ``fused_ops`` on and off (the
  fused backward closures replay the exact floating-point expression
  sequence of the chains they replace);
- a float32 model trains end to end, keeps float32 tables throughout,
  and a float64 reference checkpoint served as float32 ranks within a
  pinned tolerance of the float64 metrics.
"""

import dataclasses

import numpy as np

from repro.core import GroupSAConfig
from repro.evaluation.protocol import evaluate, prepare_task
from repro.persistence import load_model, save_model
from repro.training import TrainingConfig, train_groupsa
from repro.training.two_stage import build_model, fit_groupsa
from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING

#: Dropout > 0 so the test catches any fused-path divergence in RNG
#: consumption, not just in arithmetic.
MODEL_CONFIG = dataclasses.replace(TINY_MODEL_CONFIG, dropout=0.15)

TRAINING = TrainingConfig(
    user_epochs=2,
    group_epochs=3,
    batch_size=64,
    learning_rate=0.02,
    seed=11,
    interleave_user_every=2,
)


def test_fused_training_is_bit_identical(tiny_split):
    """Final weights and per-epoch losses agree to the last bit."""
    results = {}
    for fused in (True, False):
        model, batcher = build_model(tiny_split, MODEL_CONFIG)
        training = dataclasses.replace(TRAINING, fused_ops=fused)
        history = fit_groupsa(model, tiny_split, batcher, training)
        results[fused] = (
            model.state_dict(),
            history.losses("user") + history.losses("group"),
        )

    fused_state, fused_losses = results[True]
    unfused_state, unfused_losses = results[False]
    assert fused_losses == unfused_losses
    assert set(fused_state) == set(unfused_state)
    for name in unfused_state:
        np.testing.assert_array_equal(fused_state[name], unfused_state[name])


def test_multi_head_fused_training_is_bit_identical(tiny_split):
    config = dataclasses.replace(MODEL_CONFIG, num_heads=2, key_dim=8, value_dim=8)
    states = {}
    for fused in (True, False):
        model, batcher = build_model(tiny_split, config)
        training = dataclasses.replace(TRAINING, group_epochs=2, user_epochs=1,
                                       fused_ops=fused)
        fit_groupsa(model, tiny_split, batcher, training)
        states[fused] = model.state_dict()
    for name in states[False]:
        np.testing.assert_array_equal(states[True][name], states[False][name])


def test_float32_model_trains_with_float32_tables(tiny_split):
    config = dataclasses.replace(MODEL_CONFIG, dtype="float32")
    model, batcher = build_model(tiny_split, config)
    for name, parameter in model.named_parameters():
        assert parameter.data.dtype == np.float32, name
    history = fit_groupsa(
        model, tiny_split, batcher,
        dataclasses.replace(TRAINING, user_epochs=1, group_epochs=2),
    )
    assert all(np.isfinite(loss) for loss in history.losses("group"))
    for name, parameter in model.named_parameters():
        assert parameter.data.dtype == np.float32, name


def test_float32_serving_metrics_match_float64(tiny_split, tmp_path):
    """A float64 checkpoint served as float32 ranks almost identically.

    The cast perturbs scores by ~1e-7 relative, so ranks can only flip
    between near-tied candidates; HR@5 / NDCG@5 are pinned to within
    0.1 of the float64 reference on the tiny world.
    """
    model, __, __h = train_groupsa(tiny_split, TINY_MODEL_CONFIG, TINY_TRAINING)
    save_model(model, str(tmp_path / "reference"))
    served = load_model(str(tmp_path / "reference"), dtype="float32")
    for __, parameter in served.named_parameters():
        assert parameter.data.dtype == np.float32

    full = tiny_split.full
    task = prepare_task(
        tiny_split.test.user_item, full.user_items(), full.num_items,
        num_candidates=20, rng=0,
    )
    reference = evaluate(model.score_user_items, task, ks=(5,))
    float32_run = evaluate(served.score_user_items, task, ks=(5,))
    for metric in ("HR@5", "NDCG@5"):
        assert abs(reference.metrics[metric] - float32_run.metrics[metric]) <= 0.1, (
            metric, reference.metrics, float32_run.metrics
        )
