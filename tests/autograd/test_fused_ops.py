"""Fused ops: gradcheck, bit-identity vs the unfused graphs, scratch pool.

The fused kernels promise two things (see ``repro/autograd/fused.py``):
correct analytic gradients (checked against central finite differences
here, including masked and fully-masked rows and multi-head layouts),
and — in float64 — results *bit-identical* to the op-by-op graphs they
replace, asserted by running the same seeded modules under both modes.
"""

import math

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    clear_scratch_pool,
    dtype_policy,
    fused_linear_relu,
    fused_masked_attention,
    fused_ops,
    fused_ops_enabled,
    fused_pairwise_logits,
    gradcheck,
    scratch_pool_stats,
    set_scratch_pool,
)
from repro.nn import (
    MASK_VALUE,
    Linear,
    PairwiseAttention,
    ScaledDotProductSelfAttention,
    social_bias_matrix,
)


class TestFusedLinearReluGradients:
    def test_gradcheck_with_bias(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(5,)), requires_grad=True)
        assert gradcheck(fused_linear_relu, (x, w, b))

    def test_gradcheck_without_bias(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        assert gradcheck(lambda x, w: fused_linear_relu(x, w, None), (x, w))

    def test_gradcheck_batched_3d(self, rng):
        x = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(5,)), requires_grad=True)
        assert gradcheck(fused_linear_relu, (x, w, b))

    def test_matches_unfused_module(self, rng):
        layer = Linear(3, 5, rng=np.random.default_rng(0))
        x_data = rng.normal(size=(2, 4, 3))

        def run(enabled):
            layer.zero_grad()
            x = Tensor(x_data.copy(), requires_grad=True)
            with fused_ops(enabled):
                out = layer.forward_relu(x)
            (out * out).sum().backward()
            return out.data, x.grad, layer.weight.grad.copy(), layer.bias.grad.copy()

        fused = run(True)
        unfused = run(False)
        for got, want in zip(fused, unfused):
            np.testing.assert_array_equal(got, want)


class TestFusedMaskedAttentionGradients:
    def test_gradcheck_unmasked(self, rng):
        q = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        k = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert gradcheck(
            lambda q, k, v: fused_masked_attention(q, k, v, scale=2.0), (q, k, v)
        )

    def test_gradcheck_masked_rows(self, rng):
        q = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        k = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        bias = np.zeros((1, 3, 3))
        bias[0, :, 2] = MASK_VALUE  # nobody attends the third position

        def fn(q, k, v):
            return fused_masked_attention(q, k, v, bias=bias, scale=2.0)

        assert gradcheck(fn, (q, k, v))
        out, weights = fn(q, k, v)
        assert np.all(weights.data[0, :, 2] < 1e-9)

    def test_gradcheck_fully_masked_row(self, rng):
        # An entire query row of MASK_VALUE (a padded member): the
        # stable softmax must stay finite and differentiable.  Finite
        # differences on q/k are hopeless here — float64 resolves
        # ~1e-7 at magnitude 1e9, swamping the 1e-6 step — so the
        # numeric check covers v (whose gradient only sees the
        # well-conditioned post-softmax weights) and q/k are asserted
        # bit-identical to the unfused reference graph instead.
        q = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        k = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(1, 3, 4)), requires_grad=True)
        bias = np.zeros((1, 3, 3))
        bias[0, 1, :] = MASK_VALUE

        def fn(q, k, v):
            return fused_masked_attention(q, k, v, bias=bias, scale=2.0)

        out, weights = fn(q, k, v)
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(weights.data[0, 1].sum(), 1.0)
        assert gradcheck(
            lambda v: fused_masked_attention(
                Tensor(q.data), Tensor(k.data), v, bias=bias, scale=2.0
            ),
            (v,),
        )

        for tensor in (q, k, v):
            tensor.zero_grad()
        fused_out, __ = fn(q, k, v)
        fused_out.sum().backward()
        fused_grads = (q.grad.copy(), k.grad.copy(), v.grad.copy())
        assert all(np.isfinite(g).all() for g in fused_grads)

        for tensor in (q, k, v):
            tensor.zero_grad()
        with fused_ops(False):
            scores = (q @ k.transpose(-1, -2)) / 2.0
            scores = scores + Tensor(bias)
            reference = scores.softmax(axis=-1) @ v
        reference.sum().backward()
        for fused_grad, unfused_grad in zip(fused_grads, (q.grad, k.grad, v.grad)):
            np.testing.assert_array_equal(fused_grad, unfused_grad)

    def test_gradcheck_multi_head(self, rng):
        # 4-D (batch, heads, length, dim) layout with a per-batch bias
        # broadcast over heads.
        q = Tensor(rng.normal(size=(2, 2, 3, 2)), requires_grad=True)
        k = Tensor(rng.normal(size=(2, 2, 3, 2)), requires_grad=True)
        v = Tensor(rng.normal(size=(2, 2, 3, 2)), requires_grad=True)
        bias = np.zeros((2, 1, 3, 3))
        bias[0, 0, :, 1] = MASK_VALUE

        def fn(q, k, v):
            return fused_masked_attention(q, k, v, bias=bias, scale=math.sqrt(2.0))

        assert gradcheck(fn, (q, k, v))

    def test_weights_are_detached(self, rng):
        q = Tensor(rng.normal(size=(1, 2, 3)), requires_grad=True)
        k = Tensor(rng.normal(size=(1, 2, 3)), requires_grad=True)
        v = Tensor(rng.normal(size=(1, 2, 3)), requires_grad=True)
        __, weights = fused_masked_attention(q, k, v)
        assert not weights.requires_grad
        assert weights._backward is None


class TestFusedPairwiseLogitsGradients:
    def _params(self, rng, dim_q=3, dim_c=3, hidden=4):
        return (
            Tensor(rng.normal(size=(dim_q + dim_c, hidden)), requires_grad=True),
            Tensor(rng.normal(size=(hidden,)), requires_grad=True),
            Tensor(rng.normal(size=(hidden, 1)), requires_grad=True),
            Tensor(rng.normal(size=(1,)), requires_grad=True),
        )

    def test_gradcheck(self, rng):
        query = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        candidates = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        w1, b1, w2, b2 = self._params(rng)
        assert gradcheck(
            fused_pairwise_logits, (query, candidates, w1, b1, w2, b2)
        )

    def test_single_candidate(self, rng):
        query = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        candidates = Tensor(rng.normal(size=(3, 1, 2)), requires_grad=True)
        w1, b1, w2, b2 = self._params(rng, dim_q=2, dim_c=2)
        out = fused_pairwise_logits(query, candidates, w1, b1, w2, b2)
        assert out.shape == (3, 1)
        assert gradcheck(
            fused_pairwise_logits, (query, candidates, w1, b1, w2, b2)
        )


class TestModuleBitIdentity:
    """Seeded modules run fused and unfused must agree to the last bit."""

    def _grads(self, module):
        return {
            name: parameter.grad.copy()
            for name, parameter in module.named_parameters()
            if parameter.grad is not None
        }

    def test_self_attention_single_head(self, rng):
        attention = ScaledDotProductSelfAttention(
            6, key_features=4, value_features=4, rng=np.random.default_rng(3)
        )
        x_data = rng.normal(size=(2, 3, 6))
        adjacency = rng.integers(0, 2, size=(2, 3, 3)).astype(bool)
        mask = np.array([[True, True, False], [True, True, True]])
        bias = social_bias_matrix(adjacency, member_mask=mask)

        def run(enabled):
            attention.zero_grad()
            x = Tensor(x_data.copy(), requires_grad=True)
            with fused_ops(enabled):
                out, weights = attention(x, bias=bias)
            (out * out).sum().backward()
            return out.data, weights.data, x.grad, self._grads(attention)

        out_f, w_f, gx_f, grads_f = run(True)
        out_u, w_u, gx_u, grads_u = run(False)
        np.testing.assert_array_equal(out_f, out_u)
        np.testing.assert_array_equal(w_f, w_u)
        np.testing.assert_array_equal(gx_f, gx_u)
        assert grads_f.keys() == grads_u.keys()
        for name in grads_u:
            np.testing.assert_array_equal(grads_f[name], grads_u[name])

    def test_self_attention_multi_head(self, rng):
        attention = ScaledDotProductSelfAttention(
            6, key_features=4, value_features=4, num_heads=2,
            rng=np.random.default_rng(4),
        )
        x_data = rng.normal(size=(2, 3, 6))
        bias = social_bias_matrix(np.ones((2, 3, 3), dtype=bool))

        def run(enabled):
            attention.zero_grad()
            x = Tensor(x_data.copy(), requires_grad=True)
            with fused_ops(enabled):
                out, weights = attention(x, bias=bias)
            (out * out).sum().backward()
            return out.data, weights.data, x.grad, self._grads(attention)

        out_f, w_f, gx_f, grads_f = run(True)
        out_u, w_u, gx_u, grads_u = run(False)
        np.testing.assert_array_equal(out_f, out_u)
        np.testing.assert_array_equal(w_f, w_u)
        np.testing.assert_array_equal(gx_f, gx_u)
        for name in grads_u:
            np.testing.assert_array_equal(grads_f[name], grads_u[name])

    def test_pairwise_attention(self, rng):
        attention = PairwiseAttention(3, 3, hidden_features=4, rng=np.random.default_rng(5))
        query_data = rng.normal(size=(2, 3))
        candidate_data = rng.normal(size=(2, 4, 3))
        mask = np.array([[True, True, False, False], [True, True, True, True]])

        def run(enabled):
            attention.zero_grad()
            query = Tensor(query_data.copy(), requires_grad=True)
            candidates = Tensor(candidate_data.copy(), requires_grad=True)
            with fused_ops(enabled):
                aggregated, weights = attention(query, candidates, mask=mask)
            (aggregated * aggregated).sum().backward()
            return (
                aggregated.data, weights.data, query.grad, candidates.grad,
                self._grads(attention),
            )

        fused = run(True)
        unfused = run(False)
        for got, want in zip(fused[:4], unfused[:4]):
            np.testing.assert_array_equal(got, want)
        for name in unfused[4]:
            np.testing.assert_array_equal(fused[4][name], unfused[4][name])


class TestBroadcastTo:
    def test_forward_is_view_semantics(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 3)))
        out = x.broadcast_to((2, 4, 3))
        np.testing.assert_array_equal(out.data, np.broadcast_to(x.data, (2, 4, 3)))

    def test_gradient_sum_reduces(self, rng):
        x = Tensor(rng.normal(size=(2, 1, 3)), requires_grad=True)
        out = x.broadcast_to((2, 4, 3))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 1, 3), 4.0))

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        assert gradcheck(lambda x: x.broadcast_to((3, 5)) * 2.0, (x,))


class TestScratchPool:
    def test_backward_reuses_buffers(self, rng):
        clear_scratch_pool()
        q = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        k = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out, __ = fused_masked_attention(q, k, v, scale=2.0)
        out.sum().backward()
        first = scratch_pool_stats()
        assert first["misses"] > 0
        assert first["retained"] > 0

        for tensor in (q, k, v):
            tensor.zero_grad()
        out, __ = fused_masked_attention(q, k, v, scale=2.0)
        out.sum().backward()
        second = scratch_pool_stats()
        assert second["hits"] >= first["misses"]
        clear_scratch_pool()

    def test_reuse_does_not_change_gradients(self, rng):
        clear_scratch_pool()
        q_data = rng.normal(size=(2, 3, 4))

        def run():
            q = Tensor(q_data.copy(), requires_grad=True)
            out, __ = fused_masked_attention(q, q, q, scale=2.0)
            (out * out).sum().backward()
            return q.grad

        first = run()
        second = run()  # backward now served from pooled buffers
        assert scratch_pool_stats()["hits"] > 0
        np.testing.assert_array_equal(first, second)
        clear_scratch_pool()

    def test_disable_pool(self, rng):
        clear_scratch_pool()
        previous = set_scratch_pool(False)
        try:
            x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
            w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
            fused_linear_relu(x, w, None).sum().backward()
            assert scratch_pool_stats()["retained"] == 0
        finally:
            set_scratch_pool(previous)
            clear_scratch_pool()


class TestDtypePolicy:
    def test_fused_ops_preserve_float32(self, rng):
        with dtype_policy("float32"):
            x = Tensor(rng.normal(size=(4, 3)).astype(np.float32), requires_grad=True)
            w = Tensor(rng.normal(size=(3, 5)).astype(np.float32), requires_grad=True)
            out = fused_linear_relu(x, w, None)
            assert out.data.dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32
            assert w.grad.dtype == np.float32

    def test_attention_module_stays_float32(self, rng):
        with dtype_policy("float32"):
            attention = ScaledDotProductSelfAttention(
                6, key_features=4, value_features=4, rng=np.random.default_rng(1)
            )
            bias = social_bias_matrix(np.ones((1, 3, 3), dtype=bool))
            x = Tensor(rng.normal(size=(1, 3, 6)).astype(np.float32), requires_grad=True)
            out, weights = attention(x, bias=bias)
        assert out.data.dtype == np.float32
        assert weights.data.dtype == np.float32

    def test_context_switch_flag(self):
        assert fused_ops_enabled()
        with fused_ops(False):
            assert not fused_ops_enabled()
        assert fused_ops_enabled()
