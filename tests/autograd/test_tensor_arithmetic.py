"""Gradient correctness of elementwise arithmetic and broadcasting."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestElementwise:
    def test_add(self, rng):
        gradcheck(lambda a, b: a + b, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_sub(self, rng):
        gradcheck(lambda a, b: a - b, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_mul(self, rng):
        gradcheck(lambda a, b: a * b, [_t(rng, 3, 4), _t(rng, 3, 4)])

    def test_div(self, rng):
        denominator = Tensor(rng.normal(size=(3, 4)) + 3.0, requires_grad=True)
        gradcheck(lambda a, b: a / b, [_t(rng, 3, 4), denominator])

    def test_neg(self, rng):
        gradcheck(lambda a: -a, [_t(rng, 2, 5)])

    def test_pow(self, rng):
        base = Tensor(np.abs(rng.normal(size=(3, 3))) + 0.5, requires_grad=True)
        gradcheck(lambda a: a**3, [base])

    def test_pow_rejects_tensor_exponent(self, rng):
        with pytest.raises(TypeError):
            _t(rng, 2, 2) ** _t(rng, 2, 2)

    def test_scalar_operands(self, rng):
        gradcheck(lambda a: 2.0 * a + 1.0, [_t(rng, 4)])
        gradcheck(lambda a: 1.0 - a, [_t(rng, 4)])
        gradcheck(lambda a: 6.0 / (a + 4.0), [_t(rng, 4)])


class TestBroadcasting:
    def test_add_row_vector(self, rng):
        gradcheck(lambda a, b: a + b, [_t(rng, 3, 4), _t(rng, 4)])

    def test_add_column_vector(self, rng):
        gradcheck(lambda a, b: a + b, [_t(rng, 3, 4), _t(rng, 3, 1)])

    def test_mul_scalar_tensor(self, rng):
        gradcheck(lambda a, b: a * b, [_t(rng, 2, 3, 4), _t(rng, 1)])

    def test_mul_batched(self, rng):
        gradcheck(lambda a, b: a * b, [_t(rng, 2, 3, 4), _t(rng, 3, 4)])

    def test_broadcast_value_matches_numpy(self, rng):
        a = rng.normal(size=(3, 1))
        b = rng.normal(size=(1, 4))
        out = Tensor(a) + Tensor(b)
        np.testing.assert_allclose(out.data, a + b)


class TestMatmul:
    def test_2d(self, rng):
        gradcheck(lambda a, b: a @ b, [_t(rng, 3, 4), _t(rng, 4, 2)])

    def test_batched(self, rng):
        gradcheck(lambda a, b: a @ b, [_t(rng, 2, 3, 4), _t(rng, 2, 4, 5)])

    def test_broadcast_batch(self, rng):
        gradcheck(lambda a, b: a @ b, [_t(rng, 2, 3, 4), _t(rng, 4, 5)])

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            _t(rng, 4) @ _t(rng, 4)

    def test_value_matches_numpy(self, rng):
        a = rng.normal(size=(5, 6))
        b = rng.normal(size=(6, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestChains:
    def test_composite_expression(self, rng):
        gradcheck(
            lambda a, b: ((a @ b).relu() * 2.0 + 1.0).sigmoid(),
            [_t(rng, 3, 4), _t(rng, 4, 3)],
        )

    def test_reused_tensor_accumulates(self, rng):
        a = _t(rng, 3, 3)
        out = (a * a).sum() + (a * 2.0).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, 2.0 * a.data + 2.0)
