"""Unit tests for :class:`repro.autograd.sparse.RowSparseGrad` and the
gather backward that emits it."""

import numpy as np
import pytest

from repro.autograd import (
    RowSparseGrad,
    Tensor,
    set_sparse_grads,
    sparse_grads,
    sparse_grads_enabled,
)
from repro.nn.embedding import Embedding
from repro.nn.module import Parameter


def _leaf(rows=6, dim=3, seed=0):
    """An opted-in leaf table (``Parameter`` carries the opt-in slot)."""
    data = np.random.default_rng(seed).normal(size=(rows, dim))
    parameter = Parameter(data)
    parameter._sparse_grad = True
    return parameter


class TestGatherBackward:
    def test_emits_row_sparse_grad_when_enabled(self):
        leaf = _leaf()
        index = np.array([4, 1, 4, 0])
        with sparse_grads():
            out = leaf[index]
            out.backward(np.ones(out.shape))
        assert isinstance(leaf.grad, RowSparseGrad)
        np.testing.assert_array_equal(leaf.grad.indices, [0, 1, 4])
        assert leaf.grad.shape == leaf.shape

    def test_coalescing_matches_dense_scatter_bitwise(self):
        leaf = _leaf(rows=8)
        index = np.array([[5, 2, 5], [5, 0, 2]])
        upstream = np.random.default_rng(1).normal(size=(2, 3, 3))

        with sparse_grads():
            out = leaf[index]
            out.backward(upstream)
        sparse = leaf.grad

        dense_leaf = _leaf(rows=8)
        out = dense_leaf[index]
        out.backward(upstream)
        dense = dense_leaf.grad

        assert isinstance(sparse, RowSparseGrad)
        assert isinstance(dense, np.ndarray)
        np.testing.assert_array_equal(sparse.to_dense(), dense)
        assert sparse.to_dense().tobytes() == dense.tobytes()

    def test_disabled_by_default(self):
        leaf = _leaf()
        assert not sparse_grads_enabled()
        out = leaf[np.array([1, 2])]
        out.backward(np.ones(out.shape))
        assert isinstance(leaf.grad, np.ndarray)

    def test_opt_out_per_tensor(self):
        plain = Tensor(np.ones((4, 2)), requires_grad=True)  # no _sparse_grad
        with sparse_grads():
            out = plain[np.array([0, 3])]
            out.backward(np.ones(out.shape))
        assert isinstance(plain.grad, np.ndarray)

    def test_opt_out_restores_previous_state(self):
        previous = set_sparse_grads(True)
        try:
            assert sparse_grads_enabled()
            with sparse_grads(False):
                assert not sparse_grads_enabled()
            assert sparse_grads_enabled()
        finally:
            set_sparse_grads(previous)

    def test_non_leaf_gather_stays_dense(self):
        """Gathers from computed tensors (which carry no opt-in slot)
        keep the dense scatter backward."""
        leaf = _leaf()
        with sparse_grads():
            doubled = leaf * 2.0
            out = doubled[np.array([0, 1])]
            out.backward(np.ones(out.shape))
        assert isinstance(leaf.grad, np.ndarray)

    def test_slice_indexing_stays_dense(self):
        leaf = _leaf()
        with sparse_grads():
            out = leaf[1:3]
            out.backward(np.ones(out.shape))
        assert isinstance(leaf.grad, np.ndarray)


class TestAccumulation:
    def _sparse(self, index, rows=6, dim=2, seed=0):
        grad = np.random.default_rng(seed).normal(
            size=(len(index),) + (dim,)
        )
        return (
            RowSparseGrad.from_gather(np.asarray(index), grad, (rows, dim)),
            grad,
        )

    def test_sparse_plus_sparse_same_rows(self):
        a, __ = self._sparse([1, 3], seed=1)
        b, __ = self._sparse([1, 3], seed=2)
        expected = a.to_dense() + b.to_dense()
        a.add_(b)
        np.testing.assert_array_equal(a.to_dense(), expected)

    def test_sparse_plus_sparse_disjoint_rows(self):
        a, __ = self._sparse([0, 2], seed=1)
        b, __ = self._sparse([1, 5], seed=2)
        expected = a.to_dense() + b.to_dense()
        a.add_(b)
        np.testing.assert_array_equal(a.indices, [0, 1, 2, 5])
        np.testing.assert_array_equal(a.to_dense(), expected)

    def test_sparse_plus_sparse_overlapping_rows(self):
        a, __ = self._sparse([0, 2, 4], seed=1)
        b, __ = self._sparse([2, 3], seed=2)
        expected = a.to_dense() + b.to_dense()
        a.add_(b)
        np.testing.assert_array_equal(a.to_dense(), expected)

    def test_sparse_into_dense(self):
        sparse, __ = self._sparse([1, 4], seed=3)
        dense = np.random.default_rng(4).normal(size=(6, 2))
        expected = dense + sparse.to_dense()
        sparse.add_to_dense(dense)
        np.testing.assert_array_equal(dense, expected)

    def test_mixed_graph_accumulation(self):
        """A leaf consumed by both a gather and a dense op ends up with
        a correct dense gradient."""
        leaf = _leaf(rows=4, dim=2)
        with sparse_grads():
            gathered = leaf[np.array([0, 2])]
            loss = (gathered * gathered).sum() + (leaf * leaf).sum()
            loss.backward()
        assert isinstance(leaf.grad, np.ndarray)
        expected = 2.0 * leaf.data.copy()
        expected[[0, 2]] += 2.0 * leaf.data[[0, 2]]
        np.testing.assert_allclose(leaf.grad, expected)

    def test_shape_mismatch_rejected(self):
        a, __ = self._sparse([0], rows=6)
        b, __ = self._sparse([0], rows=7)
        with pytest.raises(ValueError, match="shapes differ"):
            a.add_(b)


class TestRowSparseGradOps:
    def test_scaling_matches_dense(self):
        grad = RowSparseGrad.from_gather(
            np.array([0, 3]), np.ones((2, 2)), (5, 2)
        )
        dense = grad.to_dense()
        grad *= 0.25
        dense *= 0.25
        np.testing.assert_array_equal(grad.to_dense(), dense)

    def test_sq_sum(self):
        grad = RowSparseGrad.from_gather(
            np.array([0, 3]), np.full((2, 2), 2.0), (50, 2)
        )
        assert grad.sq_sum() == pytest.approx(16.0)

    def test_nbytes_scales_with_rows_not_table(self):
        small = RowSparseGrad.from_gather(
            np.array([0, 1]), np.ones((2, 4)), (10_000, 4)
        )
        assert small.nbytes < 1_000
        assert small.nnz_rows == 2

    def test_embedding_marks_weight(self):
        table = Embedding(5, 3, rng=np.random.default_rng(0))
        assert table.weight._sparse_grad is True
        assert table.weight._gather_hook is None
