"""The functional wrappers in repro.autograd.ops delegate correctly."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd import ops


class TestFunctionalWrappers:
    def test_arithmetic(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(ops.add(a, b).data, a.data + b.data)
        np.testing.assert_allclose(ops.sub(a, b).data, a.data - b.data)
        np.testing.assert_allclose(ops.mul(a, b).data, a.data * b.data)
        np.testing.assert_allclose(ops.div(a, b).data, a.data / b.data)

    def test_matmul(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(ops.matmul(a, b).data, a.data @ b.data)

    def test_unary(self, rng):
        a = Tensor(np.abs(rng.normal(size=(2, 3))) + 0.5)
        np.testing.assert_allclose(ops.exp(a).data, np.exp(a.data))
        np.testing.assert_allclose(ops.log(a).data, np.log(a.data))
        np.testing.assert_allclose(ops.sqrt(a).data, np.sqrt(a.data))
        np.testing.assert_allclose(ops.tanh(a).data, np.tanh(a.data))
        np.testing.assert_allclose(ops.relu(a).data, np.maximum(a.data, 0))

    def test_stable_family(self, rng):
        a = Tensor(rng.normal(size=(5,)))
        np.testing.assert_allclose(
            ops.sigmoid(a).data, 1.0 / (1.0 + np.exp(-a.data)), atol=1e-10
        )
        np.testing.assert_allclose(
            ops.log_sigmoid(a).data, np.log(ops.sigmoid(a).data), atol=1e-10
        )
        np.testing.assert_allclose(
            ops.softplus(a).data, np.log1p(np.exp(a.data)), atol=1e-10
        )

    def test_reductions(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(ops.reduce_sum(a, axis=0).data, a.data.sum(axis=0))
        np.testing.assert_allclose(ops.reduce_mean(a, axis=1).data, a.data.mean(axis=1))
        np.testing.assert_allclose(ops.reduce_max(a, axis=1).data, a.data.max(axis=1))

    def test_softmax(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(ops.softmax(a).data.sum(axis=-1), np.ones(3))
        np.testing.assert_allclose(
            ops.log_softmax(a).data, np.log(ops.softmax(a).data), atol=1e-10
        )

    def test_shape_helpers(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        assert ops.reshape(a, 2, 6).shape == (2, 6)
        assert ops.transpose(a).shape == (4, 3)

    def test_embedding_lookup(self, rng):
        table = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        indices = np.array([[0, 5], [2, 2]])
        out = ops.embedding_lookup(table, indices)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data, table.data[indices])

    def test_accepts_raw_arrays(self):
        out = ops.add(np.ones((2, 2)), Tensor(np.ones((2, 2))))
        np.testing.assert_allclose(out.data, 2 * np.ones((2, 2)))


class TestGradcheckUtility:
    def test_gradcheck_reports_mismatch(self):
        from repro.autograd import gradcheck

        broken = Tensor(np.array([1.0, 2.0]), requires_grad=True)

        def wrong_gradient(a):
            # Build an op with a deliberately wrong backward.
            out = a * 1.0
            original = out._backward

            def bad(grad):
                broken._accumulate(grad * 100.0)

            out._backward = bad
            return out

        with pytest.raises(AssertionError, match="gradient mismatch"):
            gradcheck(wrong_gradient, [broken])

    def test_numerical_gradient_shape(self, rng):
        from repro.autograd import numerical_gradient

        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        grad = numerical_gradient(lambda t: (t * t).sum(), [a], 0)
        assert grad.shape == (2, 3)
        np.testing.assert_allclose(grad, 2 * a.data, atol=1e-4)
