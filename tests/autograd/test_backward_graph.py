"""Backward-pass machinery: accumulation, detach, no_grad, errors."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad
from repro.autograd.context import enable_grad


class TestBackward:
    def test_scalar_backward_defaults_to_one(self):
        a = Tensor([2.0], requires_grad=True)
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0])

    def test_nonscalar_requires_explicit_grad(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_explicit_grad_is_used(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        (a * 2.0).backward(np.array([1.0, 5.0]))
        np.testing.assert_allclose(a.grad, [2.0, 10.0])

    def test_backward_on_leaf_without_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph(self):
        # y = (a*2) + (a*3): both paths contribute.
        a = Tensor([1.0], requires_grad=True)
        left = a * 2.0
        right = a * 3.0
        (left + right).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])

    def test_deep_chain_does_not_recurse(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for __ in range(3000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])


class TestGraphControl:
    def test_no_grad_blocks_recording(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        c = Tensor([1.0], requires_grad=True)
        (b * c).sum().backward()
        assert a.grad is None
        np.testing.assert_allclose(c.grad, [4.0])

    def test_detach_shares_data(self):
        a = Tensor([1.0, 2.0])
        assert a.detach().data is a.data

    def test_constant_branches_skip_gradient_work(self):
        a = Tensor([1.0], requires_grad=True)
        constant = Tensor([5.0])
        (a * constant).sum().backward()
        assert constant.grad is None


class TestTensorBasics:
    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert np.all(Tensor.ones(2, 3).data == 1)
        assert Tensor.zeros(2, 3, requires_grad=True).requires_grad

    def test_numpy_shares_storage(self):
        a = Tensor([1.0, 2.0])
        a.numpy()[0] = 9.0
        assert a.data[0] == 9.0

    def test_as_tensor_passthrough(self):
        from repro.autograd import as_tensor

        a = Tensor([1.0])
        assert as_tensor(a) is a
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)
