"""Gradients of non-linearities, reductions, shape ops and indexing."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd.tensor import concatenate, stack, where


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestNonlinearities:
    def test_exp(self, rng):
        gradcheck(lambda a: a.exp(), [_t(rng, 3, 4)])

    def test_log(self, rng):
        positive = Tensor(np.abs(rng.normal(size=(3, 4))) + 0.5, requires_grad=True)
        gradcheck(lambda a: a.log(), [positive])

    def test_sqrt(self, rng):
        positive = Tensor(np.abs(rng.normal(size=(3, 4))) + 0.5, requires_grad=True)
        gradcheck(lambda a: a.sqrt(), [positive])

    def test_sigmoid(self, rng):
        gradcheck(lambda a: a.sigmoid(), [_t(rng, 3, 4)])

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor(np.array([-1000.0, 0.0, 1000.0])).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_tanh(self, rng):
        gradcheck(lambda a: a.tanh(), [_t(rng, 3, 4)])

    def test_relu(self, rng):
        # Shift away from 0 to dodge the kink during finite differencing.
        data = rng.normal(size=(4, 4))
        data[np.abs(data) < 0.1] += 0.3
        gradcheck(lambda a: a.relu(), [Tensor(data, requires_grad=True)])

    def test_softplus(self, rng):
        gradcheck(lambda a: a.softplus(), [_t(rng, 3, 4)])

    def test_softplus_stable_for_large_inputs(self):
        out = Tensor(np.array([800.0, -800.0])).softplus()
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data[0], 800.0)
        np.testing.assert_allclose(out.data[1], 0.0, atol=1e-12)

    def test_log_sigmoid(self, rng):
        gradcheck(lambda a: a.log_sigmoid(), [_t(rng, 3, 4)])

    def test_log_sigmoid_matches_naive(self, rng):
        x = rng.normal(size=(5,))
        naive = np.log(1.0 / (1.0 + np.exp(-x)))
        np.testing.assert_allclose(Tensor(x).log_sigmoid().data, naive, atol=1e-10)


class TestReductions:
    def test_sum_all(self, rng):
        gradcheck(lambda a: a.sum(), [_t(rng, 3, 4)])

    def test_sum_axis(self, rng):
        gradcheck(lambda a: a.sum(axis=1), [_t(rng, 3, 4)])

    def test_sum_axis_keepdims(self, rng):
        gradcheck(lambda a: a.sum(axis=-1, keepdims=True), [_t(rng, 2, 3, 4)])

    def test_sum_multiple_axes(self, rng):
        gradcheck(lambda a: a.sum(axis=(0, 2)), [_t(rng, 2, 3, 4)])

    def test_mean(self, rng):
        gradcheck(lambda a: a.mean(axis=-1), [_t(rng, 3, 4)])
        out = Tensor(np.ones((2, 5))).mean()
        assert out.item() == pytest.approx(1.0)

    def test_max(self, rng):
        data = rng.normal(size=(3, 5))
        gradcheck(lambda a: a.max(axis=1), [Tensor(data, requires_grad=True)])

    def test_max_splits_gradient_on_ties(self):
        tied = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        tied.max(axis=1).sum().backward()
        np.testing.assert_allclose(tied.grad, [[0.5, 0.5, 0.0]])

    def test_var(self, rng):
        gradcheck(lambda a: a.var(axis=-1), [_t(rng, 3, 4)])
        data = rng.normal(size=(4, 6))
        np.testing.assert_allclose(
            Tensor(data).var(axis=-1).data, data.var(axis=-1), atol=1e-10
        )


class TestShapes:
    def test_reshape(self, rng):
        gradcheck(lambda a: a.reshape(6, 2).sigmoid(), [_t(rng, 3, 4)])

    def test_reshape_infer(self, rng):
        out = _t(rng, 3, 4).reshape(2, -1)
        assert out.shape == (2, 6)

    def test_transpose(self, rng):
        gradcheck(lambda a: a.transpose(-1, -2).sigmoid(), [_t(rng, 2, 3, 4)])

    def test_permute(self, rng):
        gradcheck(lambda a: a.permute(2, 0, 1).sigmoid(), [_t(rng, 2, 3, 4)])

    def test_concatenate(self, rng):
        gradcheck(
            lambda a, b: concatenate([a, b], axis=-1).sigmoid(),
            [_t(rng, 2, 3), _t(rng, 2, 2)],
        )

    def test_concatenate_axis0(self, rng):
        gradcheck(
            lambda a, b: concatenate([a, b], axis=0).sigmoid(),
            [_t(rng, 2, 3), _t(rng, 4, 3)],
        )

    def test_stack(self, rng):
        gradcheck(
            lambda a, b: stack([a, b], axis=0).sigmoid(),
            [_t(rng, 2, 3), _t(rng, 2, 3)],
        )

    def test_where(self, rng):
        condition = rng.random((3, 4)) > 0.5
        gradcheck(
            lambda a, b: where(condition, a, b),
            [_t(rng, 3, 4), _t(rng, 3, 4)],
        )


class TestIndexing:
    def test_slice(self, rng):
        gradcheck(lambda a: a[1:, :2].sigmoid(), [_t(rng, 3, 4)])

    def test_integer_row(self, rng):
        gradcheck(lambda a: a[1].sigmoid(), [_t(rng, 3, 4)])

    def test_gather_rows(self, rng):
        indices = np.array([0, 2, 2, 1])
        gradcheck(lambda a: a[indices].sigmoid(), [_t(rng, 4, 3)])

    def test_gather_2d_indices(self, rng):
        indices = np.array([[0, 1], [3, 3]])
        table = _t(rng, 5, 4)
        out = table[indices]
        assert out.shape == (2, 2, 4)
        gradcheck(lambda a: a[indices].sigmoid(), [table])

    def test_repeated_indices_accumulate(self, rng):
        table = _t(rng, 3, 2)
        indices = np.array([1, 1, 1])
        table[indices].sum().backward()
        np.testing.assert_allclose(table.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(table.grad[0], [0.0, 0.0])
