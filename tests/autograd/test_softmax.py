"""Softmax family: values, gradients, numerical stability, masking."""

import numpy as np

from repro.autograd import Tensor, gradcheck
from repro.nn.attention import MASK_VALUE


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = _t(rng, 4, 7).softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_gradcheck(self, rng):
        gradcheck(lambda a: a.softmax(axis=-1), [_t(rng, 3, 5)])

    def test_gradcheck_middle_axis(self, rng):
        gradcheck(lambda a: a.softmax(axis=1), [_t(rng, 2, 4, 3)])

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        a = Tensor(x).softmax(axis=-1)
        b = Tensor(x + 100.0).softmax(axis=-1)
        np.testing.assert_allclose(a.data, b.data, atol=1e-12)

    def test_large_logits_stable(self):
        out = Tensor(np.array([[1e4, 0.0, -1e4]])).softmax(axis=-1)
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data, [[1.0, 0.0, 0.0]], atol=1e-12)

    def test_mask_value_zeroes_entries(self, rng):
        logits = rng.normal(size=(2, 4))
        logits[:, -1] += MASK_VALUE
        out = Tensor(logits).softmax(axis=-1)
        assert np.all(out.data[:, -1] < 1e-12)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(2))

    def test_fully_masked_row_is_uniform(self):
        logits = np.full((1, 3), MASK_VALUE)
        out = Tensor(logits).softmax(axis=-1)
        np.testing.assert_allclose(out.data, np.full((1, 3), 1 / 3))


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(3, 6))
        direct = Tensor(x).log_softmax(axis=-1).data
        composed = np.log(Tensor(x).softmax(axis=-1).data)
        np.testing.assert_allclose(direct, composed, atol=1e-10)

    def test_gradcheck(self, rng):
        gradcheck(lambda a: a.log_softmax(axis=-1), [_t(rng, 3, 5)])

    def test_large_inputs_stable(self):
        out = Tensor(np.array([[1e4, 0.0]])).log_softmax(axis=-1)
        assert np.isfinite(out.data).all()
