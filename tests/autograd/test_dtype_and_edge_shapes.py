"""Edge cases: dtypes, degenerate shapes, scalar tensors."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.tensor import concatenate, stack, where


class TestDtypes:
    def test_default_is_float64(self):
        assert Tensor([1, 2, 3]).dtype == np.float64

    def test_explicit_float32(self):
        tensor = Tensor([1.0], dtype=np.float32)
        assert tensor.dtype == np.float32
        assert (tensor + tensor).dtype == np.float32

    def test_int_input_coerced(self):
        tensor = Tensor(np.array([1, 2], dtype=np.int64))
        assert tensor.dtype == np.float64


class TestDegenerateShapes:
    def test_empty_tensor_ops(self):
        empty = Tensor(np.empty((0, 3)), requires_grad=True)
        out = (empty * 2.0).sum()
        out.backward()
        assert empty.grad.shape == (0, 3)

    def test_single_element(self):
        one = Tensor([[5.0]], requires_grad=True)
        (one @ one).sum().backward()
        np.testing.assert_allclose(one.grad, [[10.0]])

    def test_size_one_softmax(self):
        out = Tensor([[3.0]]).softmax(axis=-1)
        np.testing.assert_allclose(out.data, [[1.0]])

    def test_length_one_concatenate(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        out = concatenate([a], axis=0)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))

    def test_stack_axis1(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        out = stack([a, b], axis=1)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_where_all_true(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        where(np.ones(3, dtype=bool), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.zeros(3))


class TestScalarBehaviour:
    def test_zero_dim_tensor(self):
        scalar = Tensor(np.float64(2.5), requires_grad=True)
        (scalar * 4.0).backward()
        np.testing.assert_allclose(scalar.grad, 4.0)

    def test_sum_of_scalar(self):
        scalar = Tensor(3.0, requires_grad=True)
        scalar.sum().backward()
        np.testing.assert_allclose(scalar.grad, 1.0)

    def test_mean_no_axis_of_matrix(self):
        matrix = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        matrix.mean().backward()
        np.testing.assert_allclose(matrix.grad, np.full((2, 3), 1 / 6))


class TestErrorPaths:
    def test_var_requires_axis(self):
        # var is defined along an axis; sanity check the axis handling.
        tensor = Tensor(np.ones((2, 4)))
        assert tensor.var(axis=0).shape == (4,)
        assert tensor.var(axis=1, keepdims=True).shape == (2, 1)

    def test_max_keepdims(self):
        tensor = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = tensor.max(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert tensor.grad.sum() == pytest.approx(2.0)
