"""ModelSwapper behavior + the zero-downtime swap-atomicity hammer."""

import json
import threading

import numpy as np
import pytest

from repro.obs.metrics_registry import MetricsRegistry
from repro.online import (
    LATEST_NAME,
    ModelSwapper,
    OnlineTrainer,
    OnlineTrainerConfig,
    SnapshotPublisher,
    generate_events,
)
from repro.persistence import load_checkpoint
from repro.serving import RecommendationService
from repro.training.trainer import TrainingConfig
from repro.training.two_stage import build_model

from tests.conftest import TINY_MODEL_CONFIG

TRAINING = TrainingConfig(batch_size=8, grad_clip=0.0, seed=31)


def _trainer(tiny_split, dataset, directory, publish_every=1):
    model, __ = build_model(tiny_split, TINY_MODEL_CONFIG)
    return OnlineTrainer(
        model,
        dataset,
        SnapshotPublisher(directory, keep_last=3),
        config=OnlineTrainerConfig(batch_size=8, publish_every_steps=publish_every),
        training=TRAINING,
    )


def _service_at(publisher_dir, dataset):
    """Engine-backed service serving the directory's LATEST version."""
    publisher = SnapshotPublisher(publisher_dir)
    info = publisher.latest
    model, __ = load_checkpoint(info.path)
    service = RecommendationService(
        model=model, dataset=dataset, model_version=info.version
    )
    service.enable_engine()
    return service, info


def _feed(trainer, dataset, count, seed):
    for event in generate_events(
        dataset, count, rng=np.random.default_rng(seed)
    ):
        trainer.ingest(event)


@pytest.fixture(scope="module")
def dataset(tiny_split):
    return tiny_split.train


class TestCheckOnce:
    def test_applies_newer_versions_and_skips_current(
        self, tiny_split, dataset, tmp_path
    ):
        trainer = _trainer(tiny_split, dataset, tmp_path / "snap")
        trainer.publish()
        service, initial = _service_at(tmp_path / "snap", dataset)
        try:
            registry = MetricsRegistry()
            swapper = ModelSwapper(
                service, tmp_path / "snap", registry=registry
            )
            # Already serving LATEST: nothing to do.
            assert swapper.check_once() is None

            _feed(trainer, dataset, 20, seed=1)
            info = trainer.publish()
            applied = swapper.check_once()
            assert applied is not None and applied.version == info.version
            assert service.model_version == info.version
            assert registry.counter("swap.applied").value == 1
            assert registry.gauge("swap.model_version").value == info.version

            response = service.recommend_for_user(3, k=5)
            assert response.model_version == info.version
            # And again: now current, no re-apply.
            assert swapper.check_once() is None
        finally:
            service.close()

    def test_tolerates_pruned_checkpoint(self, tiny_split, dataset, tmp_path):
        trainer = _trainer(tiny_split, dataset, tmp_path / "snap")
        trainer.publish()
        service, initial = _service_at(tmp_path / "snap", dataset)
        try:
            # Forge a LATEST pointer at a version whose checkpoint the
            # keep-last-N pruner already deleted.
            pointer = {
                "version": initial.version + 5,
                "filename": "ckpt-000099.npz",
                "published_at": initial.published_at,
            }
            (tmp_path / "snap" / LATEST_NAME).write_text(json.dumps(pointer))
            registry = MetricsRegistry()
            swapper = ModelSwapper(service, tmp_path / "snap", registry=registry)
            assert swapper.check_once() is None  # no crash, no swap
            assert registry.counter("swap.pruned_misses").value == 1
            assert service.model_version == initial.version
        finally:
            service.close()

    def test_background_thread_applies_versions(
        self, tiny_split, dataset, tmp_path
    ):
        trainer = _trainer(tiny_split, dataset, tmp_path / "snap")
        trainer.publish()
        service, __ = _service_at(tmp_path / "snap", dataset)
        try:
            with ModelSwapper(
                service, tmp_path / "snap", poll_interval=0.01
            ) as swapper:
                _feed(trainer, dataset, 20, seed=2)
                info = trainer.publish()
                deadline = threading.Event()
                for __attempt in range(500):
                    if service.model_version == info.version:
                        break
                    deadline.wait(0.01)
                assert service.model_version == info.version
                assert swapper.staleness_seconds is not None
        finally:
            service.close()


class TestSwapAtomicity:
    def test_hammer_service_through_ten_consecutive_swaps(
        self, tiny_split, dataset, tmp_path
    ):
        """Zero-downtime contract (docs/online.md).

        Four client threads hammer an engine-backed service while ten
        hot-swaps land under them.  The bar: not a single dropped or
        failed request, and every response carries a ``model_version``
        that was live (published) at the moment it was served.
        """
        trainer = _trainer(tiny_split, dataset, tmp_path / "snap")
        first = trainer.publish()
        service, __ = _service_at(tmp_path / "snap", dataset)
        published = {first.version}
        failures = []
        responses = []
        stop = threading.Event()

        def hammer():
            rng = np.random.default_rng(threading.get_ident() % 2**32)
            while not stop.is_set():
                user = int(rng.integers(0, dataset.num_users))
                try:
                    response = service.recommend_for_user(user, k=5)
                except BaseException as error:  # pragma: no cover
                    failures.append(repr(error))
                    return
                responses.append((response.model_version, len(response.items)))

        try:
            swapper = ModelSwapper(service, tmp_path / "snap")
            threads = [
                threading.Thread(target=hammer, daemon=True) for __i in range(4)
            ]
            for thread in threads:
                thread.start()
            for round_number in range(10):
                _feed(trainer, dataset, 16, seed=100 + round_number)
                info = trainer.publish()
                published.add(info.version)
                applied = swapper.check_once()
                assert applied is not None and applied.version == info.version
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            stop.set()
            service.close()

        assert failures == []
        assert len(responses) > 0
        served = {version for version, __count in responses}
        # Every response was scored by a version that was actually
        # published (never a half-swapped or unknown model) ...
        assert served <= published
        assert all(count == 5 for __v, count in responses)
        # ... and the swaps really happened under the traffic.
        assert service.model_version == max(published)
