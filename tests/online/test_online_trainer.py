"""Streaming trainer: bit-exact offline parity and kill/resume replay."""

import numpy as np
import pytest

from repro.autograd.context import sparse_grads as sparse_grads_context
from repro.data.loaders import GroupBatcher
from repro.online import (
    EventLogReader,
    OnlineTrainer,
    OnlineTrainerConfig,
    SnapshotPublisher,
    generate_events,
    write_event_log,
)
from repro.online.trainer import _degenerate_split
from repro.training.trainer import GroupSATrainer, TrainingConfig
from repro.training.two_stage import build_model

from tests.conftest import TINY_MODEL_CONFIG

BATCH = 8
TRAINING = TrainingConfig(batch_size=BATCH, grad_clip=0.0, seed=11)


def _fresh_model(split):
    model, __ = build_model(split, TINY_MODEL_CONFIG)
    return model


def _weights(model):
    return {name: p.data.copy() for name, p in model.named_parameters()}


def _assert_same_weights(a, b):
    assert a.keys() == b.keys()
    for name in a:
        assert np.array_equal(a[name], b[name]), name


@pytest.fixture(scope="module")
def dataset(tiny_split):
    return tiny_split.train


@pytest.fixture(scope="module")
def events(dataset):
    return generate_events(dataset, 120, rng=np.random.default_rng(21))


class TestBitExactness:
    def test_streaming_matches_offline_sparse_adam_replay(
        self, tiny_split, dataset, events, tmp_path
    ):
        """The tentpole contract: same batch sequence -> same bits.

        The offline side drives GroupSATrainer's own step functions by
        hand over the exact micro-batches the stream produces; the
        online side ingests the events.  Final weights must be
        identical down to the last bit -- there is no separate 'online
        math'.
        """
        online_model = _fresh_model(tiny_split)
        offline_model = _fresh_model(tiny_split)
        _assert_same_weights(_weights(online_model), _weights(offline_model))

        publisher = SnapshotPublisher(tmp_path / "snap")
        online = OnlineTrainer(
            online_model,
            dataset,
            publisher,
            config=OnlineTrainerConfig(batch_size=BATCH, publish_every_steps=10_000),
            training=TRAINING,
        )
        offline = GroupSATrainer(
            offline_model,
            _degenerate_split(dataset),
            GroupBatcher(dataset),
            TRAINING,
        )

        buffers = {"user": [], "group": []}
        for event in events:
            online.ingest(event)

            buffers[event.kind].append((event.entity, event.item))
            if len(buffers[event.kind]) == BATCH:
                edges = np.asarray(buffers[event.kind], dtype=np.int64)
                buffers[event.kind].clear()
                repeat = TRAINING.negatives_per_positive
                sampler = (
                    offline.user_sampler
                    if event.kind == "user"
                    else offline.group_sampler
                )
                negatives = sampler.sample_many(edges[:, 0], repeat).reshape(-1)
                step = (
                    offline._user_step
                    if event.kind == "user"
                    else offline._group_step
                )
                with sparse_grads_context(TRAINING.sparse_grads):
                    step(
                        np.repeat(edges[:, 0], repeat),
                        np.repeat(edges[:, 1], repeat),
                        negatives,
                    )

        online.publish()  # syncs lazy sparse-Adam rows
        offline.optimizer.sync()
        assert online.steps > 0
        _assert_same_weights(_weights(online_model), _weights(offline_model))


class TestKillResume:
    def test_resume_from_offset_reproduces_final_snapshot(
        self, tiny_split, dataset, events, tmp_path
    ):
        """SIGKILL mid-stream, restore, replay tail -> identical bits.

        Run A consumes the whole log uninterrupted.  Run B is killed
        after 53 events (the trainer object is simply abandoned, as a
        SIGKILL would), then a *fresh* process-equivalent restores from
        the newest snapshot, seeks the reader, and finishes the log.
        Both final snapshots must contain identical arrays and carry
        the same version number.
        """
        log = tmp_path / "events.jsonl"
        write_event_log(log, events)

        def run_a():
            publisher = SnapshotPublisher(tmp_path / "a", keep_last=2)
            trainer = OnlineTrainer(
                _fresh_model(tiny_split),
                dataset,
                publisher,
                config=OnlineTrainerConfig(batch_size=BATCH, publish_every_steps=2),
                training=TRAINING,
            )
            trainer.consume(EventLogReader(log))
            return publisher.latest

        def run_b():
            directory = tmp_path / "b"
            publisher = SnapshotPublisher(directory, keep_last=2)
            doomed = OnlineTrainer(
                _fresh_model(tiny_split),
                dataset,
                publisher,
                config=OnlineTrainerConfig(batch_size=BATCH, publish_every_steps=2),
                training=TRAINING,
            )
            doomed.consume(EventLogReader(log), max_events=53, publish_final=False)
            # -- SIGKILL: `doomed` (weights, buffers, reader) is gone --

            resumed = OnlineTrainer(
                _fresh_model(tiny_split),
                dataset,
                SnapshotPublisher(directory, keep_last=2),
                config=OnlineTrainerConfig(batch_size=BATCH, publish_every_steps=2),
                training=TRAINING,
            )
            offset = resumed.restore_latest()
            assert offset is not None and 0 < offset
            reader = EventLogReader(log, offset=offset)
            resumed.consume(reader)
            return resumed.publisher.latest

        final_a, final_b = run_a(), run_b()
        assert final_a.version == final_b.version
        with np.load(final_a.path, allow_pickle=False) as archive_a, np.load(
            final_b.path, allow_pickle=False
        ) as archive_b:
            assert sorted(archive_a.files) == sorted(archive_b.files)
            for name in archive_a.files:
                if name.endswith("__train_meta__"):
                    continue  # JSON blob; compared structurally below
                assert np.array_equal(archive_a[name], archive_b[name]), name

    def test_restore_on_empty_directory_returns_none(
        self, tiny_split, dataset, tmp_path
    ):
        trainer = OnlineTrainer(
            _fresh_model(tiny_split),
            dataset,
            SnapshotPublisher(tmp_path / "empty"),
            training=TRAINING,
        )
        assert trainer.restore_latest() is None

    def test_restore_rejects_foreign_checkpoints(
        self, tiny_split, dataset, tmp_path
    ):
        # A snapshot published without trainer/online state (e.g. by a
        # plain CheckpointManager user) must not silently resume.
        publisher = SnapshotPublisher(tmp_path / "foreign")
        publisher.publish(_fresh_model(tiny_split))
        trainer = OnlineTrainer(
            _fresh_model(tiny_split), dataset, publisher, training=TRAINING
        )
        with pytest.raises(ValueError):
            trainer.restore_latest()


class TestPublishing:
    def test_pending_buffers_survive_the_snapshot(
        self, tiny_split, dataset, events, tmp_path
    ):
        publisher = SnapshotPublisher(tmp_path / "snap")
        trainer = OnlineTrainer(
            _fresh_model(tiny_split),
            dataset,
            publisher,
            config=OnlineTrainerConfig(batch_size=50),
            training=TRAINING,
        )
        for event in events[:13]:  # fills no batch: all 13 stay pending
            trainer.ingest(event)
        assert sum(trainer.pending_counts.values()) == 13
        trainer.publish()

        resumed = OnlineTrainer(
            _fresh_model(tiny_split),
            dataset,
            SnapshotPublisher(tmp_path / "snap"),
            config=OnlineTrainerConfig(batch_size=50),
            training=TRAINING,
        )
        resumed.restore_latest()
        assert resumed.pending_counts == trainer.pending_counts
        assert resumed.events_ingested == 13
        assert resumed.steps == 0

    def test_versions_increase_monotonically(
        self, tiny_split, dataset, events, tmp_path
    ):
        publisher = SnapshotPublisher(tmp_path / "snap", keep_last=3)
        trainer = OnlineTrainer(
            _fresh_model(tiny_split),
            dataset,
            publisher,
            config=OnlineTrainerConfig(batch_size=BATCH, publish_every_steps=1),
            training=TRAINING,
        )
        stats = trainer.consume(EventLogReader(tmp_path / "missing.jsonl"))
        assert stats["events"] == 0

        log = tmp_path / "events.jsonl"
        write_event_log(log, events)
        stats = trainer.consume(EventLogReader(log))
        assert stats["events"] == len(events)
        assert stats["model_version"] == trainer.model_version
        assert trainer.model_version >= 2
        # keep-last retention holds on disk while LATEST names the top.
        retained = sorted((tmp_path / "snap").glob("ckpt-*.npz"))
        assert len(retained) <= 3
        assert publisher.latest.version == trainer.model_version

    def test_ingest_validates_ranges(self, tiny_split, dataset, tmp_path):
        from repro.online import InteractionEvent

        trainer = OnlineTrainer(
            _fresh_model(tiny_split),
            dataset,
            SnapshotPublisher(tmp_path / "snap"),
            training=TRAINING,
        )
        with pytest.raises(IndexError):
            trainer.ingest(
                InteractionEvent(0, 0.0, "user", dataset.num_users, 0)
            )
        with pytest.raises(IndexError):
            trainer.ingest(
                InteractionEvent(0, 0.0, "group", 0, dataset.num_items)
            )
