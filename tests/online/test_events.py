"""Event log: seeded generation, append/replay, offsets, torn lines."""

import json

import numpy as np
import pytest

from repro.online import (
    EventLogReader,
    InteractionEvent,
    append_events,
    generate_events,
    read_events,
    write_event_log,
)


@pytest.fixture(scope="module")
def dataset(tiny_world):
    return tiny_world.dataset


class TestGenerator:
    def test_deterministic_for_a_seed(self, dataset):
        first = generate_events(dataset, 100, rng=np.random.default_rng(3))
        second = generate_events(dataset, 100, rng=np.random.default_rng(3))
        assert first == second

    def test_seed_changes_the_stream(self, dataset):
        assert generate_events(dataset, 50, rng=np.random.default_rng(0)) != (
            generate_events(dataset, 50, rng=np.random.default_rng(1))
        )

    def test_events_are_valid_and_time_ordered(self, dataset):
        events = generate_events(dataset, 200, rng=np.random.default_rng(5))
        assert [e.seq for e in events] == list(range(200))
        assert all(e.ts <= later.ts for e, later in zip(events, events[1:]))
        for event in events:
            event.validate()
            limit = (
                dataset.num_users if event.kind == "user" else dataset.num_groups
            )
            assert 0 <= event.entity < limit
            assert 0 <= event.item < dataset.num_items

    def test_group_fraction_controls_task_mix(self, dataset):
        only_users = generate_events(
            dataset, 80, group_fraction=0.0, rng=np.random.default_rng(2)
        )
        assert all(e.kind == "user" for e in only_users)
        only_groups = generate_events(
            dataset, 80, group_fraction=1.0, rng=np.random.default_rng(2)
        )
        assert all(e.kind == "group" for e in only_groups)

    def test_drift_changes_item_choices(self, dataset):
        static = generate_events(
            dataset, 150, drift=0.0, rng=np.random.default_rng(4)
        )
        drifting = generate_events(
            dataset, 150, drift=1.0, rng=np.random.default_rng(4)
        )
        assert [e.item for e in static] != [e.item for e in drifting]

    def test_drift_concentrates_late_items(self, dataset):
        # With full drift each event draws from a narrow window of
        # "currently active" items, so the late tail of the stream uses
        # a smaller item vocabulary than a stationary stream does.
        drifting = generate_events(
            dataset, 300, drift=1.0, rng=np.random.default_rng(6)
        )
        static = generate_events(
            dataset, 300, drift=0.0, rng=np.random.default_rng(6)
        )
        tail = slice(200, 300)
        assert len({e.item for e in drifting[tail]}) < len(
            {e.item for e in static[tail]}
        )

    def test_rejects_bad_arguments(self, dataset):
        with pytest.raises(ValueError):
            generate_events(dataset, -1)
        with pytest.raises(ValueError):
            generate_events(dataset, 1, group_fraction=1.5)
        with pytest.raises(ValueError):
            generate_events(dataset, 1, drift=-0.1)


class TestLogRoundtrip:
    def test_write_then_read_everything(self, dataset, tmp_path):
        events = generate_events(dataset, 64, rng=np.random.default_rng(7))
        path = tmp_path / "log.jsonl"
        end = write_event_log(path, events)
        assert end == path.stat().st_size
        assert read_events(path) == events

    def test_append_extends_and_reader_resumes_from_offset(
        self, dataset, tmp_path
    ):
        events = generate_events(dataset, 30, rng=np.random.default_rng(8))
        path = tmp_path / "log.jsonl"
        write_event_log(path, events[:10])
        reader = EventLogReader(path)
        assert reader.read_batch(1000) == events[:10]
        checkpoint = reader.offset

        append_events(path, events[10:])
        # A fresh reader constructed from the checkpointed offset sees
        # exactly the appended suffix -- the resume contract.
        resumed = EventLogReader(path, offset=checkpoint)
        assert list(resumed) == events[10:]
        assert reader.read_batch(1000) == events[10:]

    def test_read_batch_respects_limit(self, dataset, tmp_path):
        events = generate_events(dataset, 20, rng=np.random.default_rng(9))
        path = tmp_path / "log.jsonl"
        write_event_log(path, events)
        reader = EventLogReader(path)
        assert reader.read_batch(7) == events[:7]
        assert reader.read_batch(7) == events[7:14]
        assert reader.read_batch(7) == events[14:]
        assert reader.read_batch(7) == []

    def test_missing_file_reads_empty(self, tmp_path):
        reader = EventLogReader(tmp_path / "absent.jsonl")
        assert reader.read_batch(5) == []
        assert reader.offset == 0


class TestTornLines:
    def test_torn_final_line_is_not_yielded(self, dataset, tmp_path):
        events = generate_events(dataset, 5, rng=np.random.default_rng(10))
        path = tmp_path / "log.jsonl"
        write_event_log(path, events)
        boundary = path.stat().st_size
        # Producer killed mid-append: half a JSON object, no newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 5, "ts": 9.')

        reader = EventLogReader(path)
        assert reader.read_batch(100) == events
        assert reader.offset == boundary  # stops *before* the torn line

        # Producer comes back and completes the line: the reader picks
        # it up from the same offset without rereading anything.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('0, "kind": "user", "entity": 1, "item": 2}\n')
        tail = reader.read_batch(100)
        assert tail == [
            InteractionEvent(seq=5, ts=9.0, kind="user", entity=1, item=2)
        ]

    def test_decode_validates_kind(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"seq": 0, "ts": 0.0, "kind": "moderator", "entity": 0, "item": 0}
                )
                + "\n"
            )
        with pytest.raises(ValueError):
            EventLogReader(path).read_batch(1)
