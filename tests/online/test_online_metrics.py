"""Per-replay-batch metrics stream and consumer-lag introspection.

Satellite of ISSUE 10: the OnlineTrainer emits one
``repro.obs/online-batch/v1`` JSONL record per optimizer step (offset,
loss, events/sec, replay lag), reusing the run-metrics JSONL writer,
and ``EventLogReader.lag_bytes`` reports how far the consumer trails
the log — both surfaced via ``repro online-bench --metrics-out``.
"""

import json

import numpy as np
import pytest

from repro.online import (
    EventLogReader,
    OnlineTrainer,
    OnlineTrainerConfig,
    SnapshotPublisher,
    generate_events,
    write_event_log,
)
from repro.training.two_stage import build_model

from tests.conftest import TINY_MODEL_CONFIG

BATCH = 8


@pytest.fixture(scope="module")
def event_log(tiny_split, tmp_path_factory):
    path = tmp_path_factory.mktemp("events") / "events.jsonl"
    events = generate_events(
        tiny_split.train, 50, rng=np.random.default_rng(17)
    )
    write_event_log(path, events)
    return path


def make_trainer(tiny_split, tmp_path, metrics_path=None):
    model, __ = build_model(tiny_split, TINY_MODEL_CONFIG)
    publisher = SnapshotPublisher(tmp_path / "snapshots")
    return OnlineTrainer(
        model,
        tiny_split.train,
        publisher,
        config=OnlineTrainerConfig(batch_size=BATCH),
        metrics_path=None if metrics_path is None else str(metrics_path),
    )


class TestLagBytes:
    def test_lag_shrinks_to_zero_as_the_reader_drains(self, event_log):
        reader = EventLogReader(event_log)
        size = event_log.stat().st_size
        assert reader.lag_bytes() == size
        reader.read_batch(10)
        drained_some = reader.lag_bytes()
        assert 0 < drained_some < size
        while reader.read_batch(10):
            pass
        assert reader.lag_bytes() == 0

    def test_missing_file_reports_zero(self, tmp_path):
        assert EventLogReader(tmp_path / "nope.jsonl").lag_bytes() == 0


class TestBatchMetricsStream:
    def test_one_record_per_step_with_schema_and_lag(
        self, tiny_split, event_log, tmp_path
    ):
        metrics_path = tmp_path / "batches.jsonl"
        trainer = make_trainer(tiny_split, tmp_path, metrics_path)
        stats = trainer.consume(EventLogReader(event_log))
        trainer.close()
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        assert len(records) == stats["steps"] == trainer.steps
        for record in records:
            assert record["schema"] == "repro.obs/online-batch/v1"
            assert record["kind"] in ("user", "group")
            assert record["events"] >= 1
            assert record["offset"] >= 0
            assert record["replay_lag_bytes"] >= 0
            assert np.isfinite(record["loss"])
            assert record["events_per_s"] is None or record["events_per_s"] > 0
        # Steps are ordered and offsets never move backwards.
        assert [r["step"] for r in records] == sorted(r["step"] for r in records)
        offsets = [r["offset"] for r in records]
        assert offsets == sorted(offsets)
        # The final step saw the reader nearly drained.
        assert records[-1]["replay_lag_bytes"] < event_log.stat().st_size

    def test_no_metrics_path_writes_nothing(
        self, tiny_split, event_log, tmp_path
    ):
        trainer = make_trainer(tiny_split, tmp_path)
        trainer.consume(EventLogReader(event_log))
        trainer.close()
        assert not list(tmp_path.glob("*.jsonl"))

    def test_replay_lag_gauge_tracks_consumption(
        self, tiny_split, event_log, tmp_path
    ):
        trainer = make_trainer(tiny_split, tmp_path)
        trainer.consume(EventLogReader(event_log))
        gauge = trainer.registry.gauges()["online.replay_lag_bytes"]
        assert gauge.value == 0.0  # fully drained


class TestCliWiring:
    def test_online_bench_accepts_metrics_out(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["online-bench", "--metrics-out", "out/batches.jsonl"]
        )
        assert args.metrics_out == "out/batches.jsonl"
        assert args.handler is not None

    def test_obs_report_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "obs-report", "--mode", "cluster", "--drift", "0.9",
                "--inject-latency-ms", "250", "--json", "ops.json",
                "--html", "ops.html",
            ]
        )
        assert args.mode == "cluster"
        assert args.inject_latency_ms == 250.0
        assert args.json == "ops.json" and args.html == "ops.html"
