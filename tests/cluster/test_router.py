"""ShardRouter end to end: real worker processes, parity, recovery.

The acceptance contract: router-merged recommendation lists are
bit-identical to single-process engine mode for user, group and
ad-hoc requests (duplicate members, ties and exclusions included).
Scores travel with them and agree to float tolerance — item-subset
scoring changes BLAS batch shapes, which legally perturbs the last
ulp, exactly as the existing direct-vs-engine parity tests allow.

One module-scoped 2-worker/3-shard cluster serves most tests (spawn
costs a couple of seconds); failure-path tests that kill workers
launch their own throwaway clusters.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterError, ShardRouter
from repro.engine import InferenceEngine
from repro.serving import RecommendationService

ADHOC_CASES = ([0, 1, 2], [9, 3, 3, 1], [17], [5, 12, 8, 5, 12])


@pytest.fixture(scope="module")
def engine(trained_tiny_model, tiny_split):
    model, __, __h = trained_tiny_model
    engine = InferenceEngine(model, tiny_split.train)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def router(trained_tiny_model, tiny_split):
    model, __, __h = trained_tiny_model
    router = ShardRouter.launch(
        model,
        tiny_split.train,
        config=ClusterConfig(num_workers=2, num_shards=3),
    )
    yield router
    router.close()


class TestParity:
    def test_user_lists_bit_identical(self, router, engine, tiny_split):
        for user in range(tiny_split.train.num_users):
            items, scores = router.topk_user(user, k=7)
            expected_items, expected_scores = engine.topk_user(user, 7)
            assert items.tolist() == expected_items.tolist(), user
            assert np.allclose(scores, expected_scores, rtol=1e-9)

    def test_group_lists_bit_identical(self, router, engine):
        for group in range(15):
            items, scores = router.topk_group(group, k=5)
            expected_items, expected_scores = engine.topk_group(group, 5)
            assert items.tolist() == expected_items.tolist(), group
            assert np.allclose(scores, expected_scores, rtol=1e-9)

    def test_adhoc_lists_bit_identical(self, router, engine):
        for members in ADHOC_CASES:
            items, scores = router.topk_members(members, k=5)
            expected_items, __ = engine.topk_members(members, 5)
            assert items.tolist() == expected_items.tolist(), members

    def test_modulo_strategy_same_lists(self, trained_tiny_model, tiny_split, engine):
        model, __, __h = trained_tiny_model
        config = ClusterConfig(num_workers=2, num_shards=4, strategy="modulo")
        with ShardRouter.launch(model, tiny_split.train, config=config) as router:
            for user in range(8):
                items, __s = router.topk_user(user, k=7)
                assert items.tolist() == engine.topk_user(user, 7)[0].tolist()

    def test_k_exceeding_catalog(self, router, engine):
        items, __ = router.topk_user(0, k=500)
        expected, __e = engine.topk_user(0, 500)
        assert items.tolist() == expected.tolist()


class TestValidation:
    def test_rejects_bad_inputs(self, router, tiny_split):
        num_users = tiny_split.train.num_users
        with pytest.raises(ValueError, match="k must be >= 1"):
            router.topk_user(0, k=0)
        with pytest.raises(IndexError):
            router.topk_user(num_users, k=3)
        with pytest.raises(IndexError):
            router.topk_group(10_000, k=3)
        with pytest.raises(ValueError, match="non-empty"):
            router.topk_members([], k=3)
        with pytest.raises(IndexError):
            router.topk_members([0, num_users], k=3)

    def test_config_requires_enough_shards(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_workers=4, num_shards=2).resolved_shards()


class TestRecovery:
    def test_worker_death_restarts_once_and_serves(
        self, trained_tiny_model, tiny_split
    ):
        model, __, __h = trained_tiny_model
        with ShardRouter.launch(
            model, tiny_split.train, config=ClusterConfig(num_workers=2)
        ) as router:
            before, __s = router.topk_user(3, k=5)
            victim = router._handles[0].process
            victim.kill()
            victim.join()
            after, __s2 = router.topk_user(3, k=5)
            assert after.tolist() == before.tolist()
            assert router.worker_restarts == 1
            assert router.workers_alive() == 2

    def test_restart_budget_exhausted_raises(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        config = ClusterConfig(num_workers=2, max_restarts_per_request=0)
        with ShardRouter.launch(model, tiny_split.train, config=config) as router:
            router._handles[1].process.kill()
            router._handles[1].process.join()
            with pytest.raises(ClusterError):
                router.topk_user(1, k=3)


class TestMetrics:
    def test_fleet_metrics_merge_exactly(self, router):
        payload_before = router.metrics_payload()
        served_before = payload_before["counters"].get("router.requests.user", 0)
        for user in range(6):
            router.topk_user(user, k=3)
        payload = router.metrics_payload()
        counters = payload["counters"]
        assert counters["router.requests.user"] == served_before + 6
        # Worker-side counters cover the same requests: every user
        # request hits every worker exactly once.
        shard_total = counters["shard.requests.user"]
        assert shard_total >= (served_before + 6) * router.num_workers
        histograms = payload["histograms"]
        assert histograms["shard.request"]["count"] >= shard_total
        assert histograms["router.request"]["count"] >= served_before + 6


class TestServiceIntegration:
    def test_cluster_mode_service(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        dataset = tiny_split.train
        direct = RecommendationService(model=model, dataset=dataset)
        clustered = RecommendationService(model=model, dataset=dataset)
        clustered.enable_cluster(ClusterConfig(num_workers=2))
        try:
            assert clustered._mode() == "cluster"
            for user in range(6):
                assert (
                    clustered.recommend_for_user(user, k=5).items
                    == direct.recommend_for_user(user, k=5).items
                )
            for group in range(6):
                a = clustered.recommend_for_group(group, k=5)
                b = direct.recommend_for_group(group, k=5)
                assert a.items == b.items
                assert a.voting_weights == b.voting_weights
            for members in ADHOC_CASES[:2]:
                a = clustered.recommend_for_members(members, k=5)
                b = direct.recommend_for_members(members, k=5)
                assert a.items == b.items
                assert a.voting_weights == b.voting_weights
        finally:
            clustered.close()
        assert clustered.router is None
        assert clustered._mode() == "direct"
