"""Cross-process distributed tracing through the shard cluster.

Acceptance contract (ISSUE 10): one cluster-mode request produces a
*single* stitched trace containing the router's spans *and* every
worker's remote-recorded child spans (queue wait, per-shard phases,
merge contribution), exportable to Chrome trace format — and with
tracing off the pipe protocol carries exactly the pre-tracing tuples
(no extra pickled fields).
"""

import json

import pytest

from repro.cluster import ClusterConfig, ShardRouter
from repro.cluster.router import _WorkerHandle
from repro.obs.spans import Tracer
from repro.obs.trace import write_span_chrome_trace
from repro.serving import RecommendationService


@pytest.fixture(scope="module")
def router(trained_tiny_model, tiny_split):
    model, __, __h = trained_tiny_model
    router = ShardRouter.launch(
        model,
        tiny_split.train,
        config=ClusterConfig(num_workers=2, num_shards=3),
    )
    yield router
    router.close()


@pytest.fixture(scope="module")
def service(trained_tiny_model, tiny_split, router):
    model, __, __h = trained_tiny_model
    return RecommendationService(
        model=model, dataset=tiny_split.train, router=router
    )


def _by_name(spans):
    grouped = {}
    for item in spans:
        grouped.setdefault(item.name, []).append(item)
    return grouped


class TestStitchedTrace:
    def test_one_request_one_trace_with_router_and_worker_spans(self, service):
        with Tracer(sample_rate=1.0) as tracer:
            rec = service.recommend_for_user(3, k=5)
        traces = tracer.traces()
        assert rec.trace_id is not None
        assert list(traces) == [rec.trace_id]
        names = _by_name(traces[rec.trace_id])
        # Router-side spans.
        assert "service.recommend_for_user" in names
        assert "router.scatter" in names
        assert "router.merge" in names
        # Worker-side spans: one queue-wait + one score per worker.
        assert len(names["worker.queue_wait"]) == 2
        assert len(names["worker.score"]) == 2
        # 3 shards across 2 workers; each shard scores + merges.
        assert len(names["shard.score"]) == 3
        assert len(names["shard.forward"]) == 3
        assert len(names["shard.topk"]) == 3
        assert len(names["worker.merge"]) == 2

    def test_remote_parentage_is_stitched_under_scatter(self, service):
        with Tracer(sample_rate=1.0) as tracer:
            service.recommend_for_group(1, k=4)
        spans = tracer.finished_spans()
        by_id = {item.span_id: item for item in spans}
        scatter = [item for item in spans if item.name == "router.scatter"]
        assert len(scatter) == 1
        for item in spans:
            if item.name in ("worker.queue_wait", "worker.score"):
                assert item.parent_id == scatter[0].span_id
            if item.name in ("shard.score", "worker.merge"):
                assert by_id[item.parent_id].name == "worker.score"
            if item.name in ("shard.forward", "shard.topk"):
                assert by_id[item.parent_id].name == "shard.score"
            if item.name == "shard.candidates":
                assert by_id[item.parent_id].name == "shard.score"

    def test_worker_spans_carry_worker_identity(self, service):
        with Tracer(sample_rate=1.0) as tracer:
            service.recommend_for_members([1, 4, 7], k=3)
        workers = {
            item.attrs["worker"]
            for item in tracer.finished_spans()
            if item.name == "worker.score"
        }
        assert workers == {0, 1}
        threads = {
            item.thread
            for item in tracer.finished_spans()
            if item.name == "worker.score"
        }
        assert threads == {"worker-0", "worker-1"}

    def test_chrome_export_includes_remote_spans(self, service, tmp_path):
        with Tracer(sample_rate=1.0) as tracer:
            service.recommend_for_user(5, k=4)
        out = tmp_path / "trace.json"
        write_span_chrome_trace(tracer.finished_spans(), out)
        events = json.loads(out.read_text())["traceEvents"]
        names = {event["name"] for event in events}
        assert {"router.scatter", "worker.score", "shard.forward"} <= names


class TestWireFormat:
    def _spy(self, monkeypatch):
        captured = []
        original = _WorkerHandle.send

        def send(handle, message):
            if message[0] == "score":
                captured.append(message)
            return original(handle, message)

        monkeypatch.setattr(_WorkerHandle, "send", send)
        return captured

    def test_untraced_messages_are_exact_five_tuples(self, router, monkeypatch):
        captured = self._spy(monkeypatch)
        router.topk_user(0, k=3)
        assert len(captured) == 2
        assert all(len(message) == 5 for message in captured)

    def test_traced_messages_append_one_context_element(self, router, monkeypatch):
        captured = self._spy(monkeypatch)
        with Tracer(sample_rate=1.0):
            router.topk_user(0, k=3)
        assert len(captured) == 2
        for message in captured:
            assert len(message) == 6
            assert set(message[5]) == {"trace_id", "span_id", "sent_ts"}

    def test_reply_arity_matches_request_arity(self, router):
        import time

        handle = router._handles[0]
        req_id = next(router._ids)
        generation = handle.send(("score", req_id, "user", 0, 3))
        reply = handle.recv(req_id, generation, time.monotonic() + 30.0)
        assert reply[0] == "ok" and len(reply) == 5

        req_id = next(router._ids)
        context = {"trace_id": "t" * 16, "span_id": "s" * 16, "sent_ts": time.time()}
        generation = handle.send(("score", req_id, "user", 0, 3, context))
        reply = handle.recv(req_id, generation, time.monotonic() + 30.0)
        assert reply[0] == "ok" and len(reply) == 6
        names = [entry["name"] for entry in reply[5]]
        assert names[0] == "worker.queue_wait"
        assert "worker.score" in names and "worker.merge" in names

    def test_tracing_off_lists_unchanged(self, service, router):
        baseline = router.topk_user(2, k=6)[0].tolist()
        with Tracer(sample_rate=1.0):
            traced = router.topk_user(2, k=6)[0].tolist()
        assert traced == baseline
