"""SharedWeightStore: round trips, read-only mapping, shared models."""

import json

import numpy as np
import pytest

from repro.cluster import SharedWeightStore, attach_shared_model, write_model_store
from repro.cluster.weights import DATA_NAME, MANIFEST_NAME, _ALIGNMENT
from repro.data.loaders import GroupBatcher


class TestStore:
    def test_round_trip_and_alignment(self, tmp_path, rng):
        arrays = {
            "a": rng.standard_normal((7, 3)),
            "b": rng.integers(0, 100, size=13).astype(np.int64),
            "c": np.array([[True, False], [False, True]]),
        }
        store = SharedWeightStore.create(tmp_path / "store", arrays)
        attached = SharedWeightStore.attach(tmp_path / "store")
        for reader in (store, attached):
            assert sorted(reader.names()) == ["a", "b", "c"]
            for name, original in arrays.items():
                assert name in reader
                view = reader[name]
                assert view.dtype == original.dtype
                assert np.array_equal(np.asarray(view), original)
        manifest = json.loads((tmp_path / "store" / MANIFEST_NAME).read_text())
        for entry in manifest["arrays"].values():
            assert entry["offset"] % _ALIGNMENT == 0
        assert attached.nbytes == sum(a.nbytes for a in arrays.values())

    def test_views_are_read_only(self, tmp_path):
        store = SharedWeightStore.create(tmp_path / "store", {"w": np.zeros(4)})
        view = store["w"]
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_attach_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SharedWeightStore.attach(tmp_path / "nowhere")
        # A data file without a manifest (interrupted create) is not
        # attachable either — the manifest is written last.
        partial = tmp_path / "partial"
        partial.mkdir()
        (partial / DATA_NAME).write_bytes(b"\x00" * 128)
        with pytest.raises(FileNotFoundError):
            SharedWeightStore.attach(partial)

    def test_rejects_empty_and_bad_format(self, tmp_path):
        with pytest.raises(ValueError):
            SharedWeightStore.create(tmp_path / "empty", {})
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / DATA_NAME).write_bytes(b"")
        (bad / MANIFEST_NAME).write_text(json.dumps({"format": "v0", "arrays": {}}))
        with pytest.raises(ValueError, match="format"):
            SharedWeightStore.attach(bad)


class TestSharedModel:
    def test_shared_model_scores_match(self, tmp_path, trained_tiny_model, tiny_split):
        model, __, __ = trained_tiny_model
        dataset = tiny_split.train
        write_model_store(model, tmp_path / "store")
        shared = attach_shared_model(tmp_path / "store")
        assert shared.num_users == model.num_users
        assert shared.num_items == model.num_items

        users = np.arange(10, dtype=np.int64)
        items = np.arange(10, 20, dtype=np.int64)
        assert np.array_equal(
            shared.score_user_items(users, items),
            model.score_user_items(users, items),
        )
        batcher = GroupBatcher(dataset)
        groups = np.array([0, 3, 7], dtype=np.int64)
        batch = batcher.batch(groups)
        assert np.array_equal(
            shared.score_group_items(batch, items[:3]),
            model.score_group_items(batch, items[:3]),
        )

    def test_shared_model_parameters_are_immutable(self, tmp_path, trained_tiny_model):
        model, __, __ = trained_tiny_model
        write_model_store(model, tmp_path / "store")
        shared = attach_shared_model(tmp_path / "store")
        name, parameter = next(iter(shared.named_parameters()))
        assert isinstance(parameter.data, np.memmap)
        with pytest.raises(ValueError):
            parameter.data[...] = 0.0
