"""ShardPlan: exact catalog coverage and index-mapping round trips."""

import numpy as np
import pytest

from repro.cluster import ShardPlan
from repro.cluster.plan import STRATEGIES


GRID = [
    (num_items, num_shards, strategy)
    for num_items in (1, 7, 50, 64)
    for num_shards in (1, 2, 3, 7)
    for strategy in STRATEGIES
]


class TestCoverage:
    @pytest.mark.parametrize("num_items,num_shards,strategy", GRID)
    def test_partition_is_exact(self, num_items, num_shards, strategy):
        plan = ShardPlan(num_items, num_shards, strategy=strategy)
        owned = [plan.global_items(shard) for shard in range(num_shards)]
        union = np.concatenate(owned)
        assert sorted(union.tolist()) == list(range(num_items))
        assert sum(plan.shard_sizes) == num_items
        for items, size in zip(owned, plan.shard_sizes):
            assert items.size == size
            # Ascending order is what makes topk_indices' positional
            # tie-break equal ascending global id within a shard.
            assert np.array_equal(items, np.sort(items))

    @pytest.mark.parametrize("num_items,num_shards,strategy", GRID)
    def test_shard_of_matches_ownership(self, num_items, num_shards, strategy):
        plan = ShardPlan(num_items, num_shards, strategy=strategy)
        shard_of = plan.shard_of(np.arange(num_items))
        for shard in range(num_shards):
            expected = plan.global_items(shard)
            assert np.array_equal(np.where(shard_of == shard)[0], expected)

    @pytest.mark.parametrize("num_items,num_shards,strategy", GRID)
    def test_local_global_round_trip(self, num_items, num_shards, strategy):
        plan = ShardPlan(num_items, num_shards, strategy=strategy)
        for shard in range(num_shards):
            owned = plan.global_items(shard)
            if owned.size == 0:
                continue
            local = plan.to_local(shard, owned)
            assert np.array_equal(local, np.arange(owned.size))
            assert np.array_equal(plan.to_global(shard, local), owned)

    def test_contiguous_is_contiguous(self):
        plan = ShardPlan(10, 3)
        assert plan.global_items(0).tolist() == [0, 1, 2, 3]
        assert plan.global_items(1).tolist() == [4, 5, 6]
        assert plan.global_items(2).tolist() == [7, 8, 9]

    def test_modulo_stripes(self):
        plan = ShardPlan(10, 3, strategy="modulo")
        assert plan.global_items(0).tolist() == [0, 3, 6, 9]
        assert plan.global_items(1).tolist() == [1, 4, 7]
        assert plan.global_items(2).tolist() == [2, 5, 8]

    def test_more_shards_than_items_leaves_empty_shards(self):
        for strategy in STRATEGIES:
            plan = ShardPlan(2, 5, strategy=strategy)
            sizes = [plan.global_items(s).size for s in range(5)]
            assert sum(sizes) == 2
            assert sizes.count(0) == 3


class TestValidation:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ShardPlan(10, 0)
        with pytest.raises(ValueError):
            ShardPlan(-1, 2)
        with pytest.raises(ValueError):
            ShardPlan(10, 2, strategy="hash")

    def test_shard_out_of_range(self):
        plan = ShardPlan(10, 2)
        with pytest.raises(IndexError):
            plan.global_items(2)
        with pytest.raises(IndexError):
            plan.to_local(-1, [0])

    def test_to_local_rejects_unowned(self):
        plan = ShardPlan(10, 2)
        with pytest.raises(ValueError):
            plan.to_local(0, [7])  # owned by shard 1
        with pytest.raises(ValueError):
            plan.to_local(0, [10])  # out of catalog

    def test_to_global_rejects_out_of_range_local(self):
        plan = ShardPlan(10, 2)
        with pytest.raises(ValueError):
            plan.to_global(0, [5])  # shard 0 has 5 items: locals 0..4

    def test_payload_round_trip(self):
        for strategy in STRATEGIES:
            plan = ShardPlan(50, 3, strategy=strategy)
            clone = ShardPlan.from_payload(plan.payload())
            assert clone == plan
            assert clone.global_items(1).tolist() == plan.global_items(1).tolist()
