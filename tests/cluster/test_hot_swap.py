"""Cluster hot-swap: versioned store GC and rolling worker re-attach.

The mmap-safety contract under test: a versioned store directory is
only ever deleted when (a) it has fallen out of the keep-last-N window
AND (b) no worker is confirmed-attached to it — deleting the backing
file under a live ``np.memmap`` is undefined behavior, so a worker
mid-roll (or stuck on an old version after a failed swap) must pin its
store on disk indefinitely.
"""

import copy
import threading

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ShardRouter
from repro.cluster.weights import VersionedStoreGC, versioned_store_dir
from repro.engine import InferenceEngine


def _make_dirs(tmp_path, versions):
    paths = {}
    for version in versions:
        path = versioned_store_dir(tmp_path, version)
        path.mkdir(parents=True)
        (path / "manifest.json").write_text("{}")
        paths[version] = path
    return paths


class TestVersionedStoreGC:
    def test_keep_last_window_survives(self, tmp_path):
        gc = VersionedStoreGC(keep_last=2)
        paths = _make_dirs(tmp_path, [0, 1, 2, 3])
        for version, path in paths.items():
            gc.register(version, path)
        removed = gc.collect()
        assert sorted(p.name for p in removed) == ["store-v000000", "store-v000001"]
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert gc.registered_versions() == [2, 3]

    def test_attached_version_is_never_deleted(self, tmp_path):
        """The satellite's worker-still-attached case: version 0 is
        outside the keep window but worker 1 never confirmed the roll,
        so its store must stay on disk."""
        gc = VersionedStoreGC(keep_last=1)
        paths = _make_dirs(tmp_path, [0, 1, 2])
        for version, path in paths.items():
            gc.register(version, path)
        gc.confirm(worker_id=0, version=2)
        gc.confirm(worker_id=1, version=0)  # stuck mid-roll

        removed = gc.collect()
        assert [p.name for p in removed] == ["store-v000001"]
        assert paths[0].exists()  # pinned by worker 1's mmap
        assert paths[2].exists()  # in the keep window

        # Once the straggler confirms the new version, the old store
        # becomes collectable.
        gc.confirm(worker_id=1, version=2)
        removed = gc.collect()
        assert [p.name for p in removed] == ["store-v000000"]
        assert not paths[0].exists()

    def test_collect_is_idempotent(self, tmp_path):
        gc = VersionedStoreGC(keep_last=1)
        paths = _make_dirs(tmp_path, [0, 1])
        for version, path in paths.items():
            gc.register(version, path)
        assert len(gc.collect()) == 1
        assert gc.collect() == []

    def test_attached_versions_tracks_latest_confirm(self):
        gc = VersionedStoreGC()
        gc.confirm(0, 1)
        gc.confirm(0, 2)
        assert gc.attached_versions() == {0: 2}

    def test_rejects_bad_keep_last(self):
        with pytest.raises(ValueError):
            VersionedStoreGC(keep_last=0)


@pytest.mark.slow
class TestRollingSwap:
    def test_rolling_swap_serves_new_model_without_downtime(
        self, trained_tiny_model, tiny_split, tmp_path
    ):
        model, __, __h = trained_tiny_model
        dataset = tiny_split.train
        new_model = copy.deepcopy(model)
        rng = np.random.default_rng(9)
        for __name, parameter in new_model.named_parameters():
            parameter.data += 0.1 * rng.standard_normal(parameter.data.shape)

        config = ClusterConfig(num_workers=2, num_shards=2, keep_last_stores=2)
        workdir = tmp_path / "cluster"
        with ShardRouter.launch(
            model, dataset, config=config, workdir=workdir
        ) as router:
            assert router.model_version == 0
            items, __s, version = router.topk_user_versioned(0, k=5)
            assert version == 0

            # Hammer the router from client threads while the fleet
            # rolls: every reply must succeed and carry a version that
            # is live (old or new, never anything else).
            failures = []
            versions_seen = set()
            stop = threading.Event()

            def hammer():
                user = 0
                while not stop.is_set():
                    try:
                        __i, __sc, v = router.topk_user_versioned(
                            user % dataset.num_users, k=5
                        )
                    except BaseException as error:  # pragma: no cover
                        failures.append(repr(error))
                        return
                    versions_seen.add(v)
                    user += 1

            threads = [
                threading.Thread(target=hammer, daemon=True) for __i in range(2)
            ]
            for thread in threads:
                thread.start()
            try:
                assert router.swap_model(new_model) == 1
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=30)

            assert failures == []
            assert versions_seen <= {0, 1}
            assert router.model_version == 1

            # Post-roll parity: the pool now answers with the NEW model,
            # bit-identical to a single-process engine over it.
            engine = InferenceEngine(new_model, dataset)
            try:
                for user in range(10):
                    items, scores, version = router.topk_user_versioned(user, k=7)
                    assert version == 1
                    expected, __e = engine.topk_user(user, 7)
                    assert items.tolist() == expected.tolist(), user
                for group in range(5):
                    items, __s, version = router.topk_group_versioned(group, k=5)
                    assert version == 1
                    expected, __e = engine.topk_group(group, 5)
                    assert items.tolist() == expected.tolist(), group
            finally:
                engine.close()

            # Store retention: two more swaps push v0/v1 out of the
            # keep-last-2 window; all workers confirmed v3, so the old
            # directories are gone while v2/v3 remain.
            assert router.swap_model(new_model, version=2) == 2
            assert router.swap_model(new_model, version=3) == 3
            assert not versioned_store_dir(workdir, 0).exists()
            assert not versioned_store_dir(workdir, 1).exists()
            assert versioned_store_dir(workdir, 2).exists()
            assert versioned_store_dir(workdir, 3).exists()

            with pytest.raises(ValueError):
                router.swap_model(new_model, version=3)
