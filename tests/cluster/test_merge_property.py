"""S3: sharded merge is bit-identical to the single-process kernel.

The property under test is pure selection math — no model, no
processes: slice a score vector by a ShardPlan, run ``topk_indices``
per shard exactly as a worker would, merge with ``merge_topk``, and
the result must equal ``topk_indices`` over the full vector, item ids
and scores both.  Scores are quantized to a handful of distinct values
so nearly every Top-K boundary is a tie, exercising the (descending
score, ascending global id) contract hard.
"""

import numpy as np
import pytest

from repro.cluster import ShardPlan, merge_topk
from repro.cluster.plan import STRATEGIES
from repro.engine.topk import exclusion_mask, topk_indices


def sharded_topk(scores, plan, k, exclude=None):
    """What worker+router do, minus the processes."""
    mask = exclusion_mask(scores.size, exclude)
    parts = []
    for shard in range(plan.num_shards):
        owned = plan.global_items(shard)
        local_scores = scores[owned]
        local_mask = None if mask is None else mask[owned]
        chosen = topk_indices(local_scores, k, local_mask)
        parts.append((owned[chosen], local_scores[chosen]))
    return merge_topk(parts, k)


def single_process_topk(scores, k, exclude=None):
    chosen = topk_indices(scores, k, exclusion_mask(scores.size, exclude))
    return chosen, scores[chosen]


GRID = [
    (num_items, num_shards, strategy)
    for num_items in (1, 7, 50)
    for num_shards in (1, 2, 3, 7)
    for strategy in STRATEGIES
]


class TestMergeMatchesKernel:
    @pytest.mark.parametrize("num_items,num_shards,strategy", GRID)
    def test_seeded_grid_with_dense_ties(self, num_items, num_shards, strategy):
        rng = np.random.default_rng(1000 * num_items + 10 * num_shards)
        plan = ShardPlan(num_items, num_shards, strategy=strategy)
        for trial in range(40):
            # Quantized scores: with <= 4 distinct values over up to 50
            # items, Top-K boundaries are almost always tied.
            scores = rng.integers(0, 4, size=num_items).astype(float)
            k = int(rng.integers(1, num_items + 5))  # includes k > shard size
            exclude = None
            if rng.random() < 0.5:
                exclude = set(
                    np.flatnonzero(rng.random(num_items) < 0.3).tolist()
                )
            expected_items, expected_scores = single_process_topk(scores, k, exclude)
            items, merged_scores = sharded_topk(scores, plan, k, exclude)
            assert np.array_equal(items, expected_items), (
                strategy, num_shards, k, scores, exclude,
            )
            assert np.array_equal(merged_scores, expected_scores)

    def test_k_larger_than_every_shard(self):
        # k exceeds each shard's size; every shard must surrender its
        # whole slice and the merge must still be exact.
        scores = np.array([2.0, 1.0, 2.0, 0.0, 2.0, 1.0, 0.0])
        plan = ShardPlan(7, 3)
        items, merged = sharded_topk(scores, plan, 7)
        assert items.tolist() == [0, 2, 4, 1, 5, 3, 6]
        assert merged.tolist() == [2.0, 2.0, 2.0, 1.0, 1.0, 0.0, 0.0]

    def test_all_items_excluded(self):
        scores = np.arange(6, dtype=float)
        plan = ShardPlan(6, 2)
        items, merged = sharded_topk(scores, plan, 3, exclude=set(range(6)))
        assert items.size == 0 and merged.size == 0

    def test_empty_parts_and_validation(self):
        items, scores = merge_topk([], 5)
        assert items.size == 0 and scores.size == 0
        empty = (np.empty(0, dtype=np.int64), np.empty(0))
        items, scores = merge_topk([empty, empty], 3)
        assert items.size == 0
        with pytest.raises(ValueError, match="mismatch"):
            merge_topk([(np.array([1, 2]), np.array([0.5]))], 1)

    def test_merge_tie_break_is_global_id(self):
        # Two shards report the same score; ascending *global* id wins
        # regardless of which part listed it first.
        part_hi = (np.array([9]), np.array([1.0]))
        part_lo = (np.array([2]), np.array([1.0]))
        items, __ = merge_topk([part_hi, part_lo], 2)
        assert items.tolist() == [2, 9]
