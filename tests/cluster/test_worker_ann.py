"""Sharded ANN retrieval: per-slice IVF indexes, exact merge parity.

Each ANN-mode scorer indexes only its own item slice and returns
ascending *global* ids, so :func:`~repro.cluster.merge.merge_topk`
needs no changes.  With the probe budget covering every list and the
candidate pool covering each slice, the merged lists must be
bit-identical to exhaustive sharded scoring — in process, no spawned
workers, so this runs in milliseconds.
"""

import numpy as np
import pytest

from repro.cluster.merge import merge_topk
from repro.cluster.plan import ShardPlan
from repro.cluster.router import ClusterConfig, ShardRouter
from repro.cluster.worker import ShardScorer

ADHOC_CASES = ((0, 1, 2), (9, 3, 1), (17,), (5, 12, 8))


def build_scorers(model, dataset, num_shards, strategy, **retrieval):
    plan = ShardPlan(dataset.num_items, num_shards, strategy)
    return [
        ShardScorer(shard, plan, model, dataset, **retrieval)
        for shard in range(num_shards)
    ]


@pytest.fixture(scope="module")
def scorer_pairs(trained_tiny_model, tiny_split):
    """(exhaustive, full-probe ANN) scorer fleets over the same world."""
    model, __, __h = trained_tiny_model
    train = tiny_split.train
    exhaustive = build_scorers(model, train, 3, "contiguous")
    ann = build_scorers(
        model,
        train,
        3,
        "contiguous",
        retrieval="ann",
        ann_nprobe=10_000,
        ann_candidates=train.num_items,
    )
    return exhaustive, ann


class TestShardedAnnParity:
    def test_user_merge_bit_identical(self, scorer_pairs, tiny_split):
        exhaustive, ann = scorer_pairs
        for user in range(tiny_split.train.num_users):
            expected = merge_topk([s.score("user", user, 7) for s in exhaustive], 7)
            got = merge_topk([s.score("user", user, 7) for s in ann], 7)
            assert got[0].tolist() == expected[0].tolist(), user
            assert np.allclose(got[1], expected[1], rtol=1e-9)

    def test_group_merge_bit_identical(self, scorer_pairs):
        exhaustive, ann = scorer_pairs
        for group in range(15):
            expected = merge_topk([s.score("group", group, 5) for s in exhaustive], 5)
            got = merge_topk([s.score("group", group, 5) for s in ann], 5)
            assert got[0].tolist() == expected[0].tolist(), group

    def test_adhoc_merge_bit_identical(self, scorer_pairs):
        exhaustive, ann = scorer_pairs
        for members in ADHOC_CASES:
            expected = merge_topk(
                [s.score("adhoc", members, 5) for s in exhaustive], 5
            )
            got = merge_topk([s.score("adhoc", members, 5) for s in ann], 5)
            assert got[0].tolist() == expected[0].tolist(), members


class TestShardLocalIndex:
    def test_index_covers_only_owned_slice(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        scorers = build_scorers(
            model, tiny_split.train, 3, "modulo", retrieval="ann", ann_nprobe=4
        )
        for scorer in scorers:
            assert scorer.ann_index is not None
            assert scorer.ann_index.num_vectors == scorer.owned.size

    def test_candidates_are_ascending_global_ids(self, scorer_pairs):
        __, ann = scorer_pairs
        for scorer in ann:
            for user in range(10):
                items, __s = scorer.score("user", user, 5)
                # Returned best-first; the underlying candidate ids are
                # owned global ids, so they stay inside the slice.
                assert np.isin(items, scorer.owned).all()

    def test_excluded_history_never_served(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        train = tiny_split.train
        scorers = build_scorers(
            model, train, 2, "contiguous",
            retrieval="ann", ann_nprobe=2, ann_candidates=16,
        )
        histories = train.user_items()
        for user in range(15):
            merged_items, __s = merge_topk(
                [s.score("user", user, 5) for s in scorers], 5
            )
            assert not histories[user] & set(merged_items.tolist())

    def test_invalid_retrieval_rejected(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        with pytest.raises(ValueError, match="retrieval"):
            build_scorers(model, tiny_split.train, 2, "contiguous",
                          retrieval="hnsw")

    def test_router_config_rejects_unknown_mode(self, trained_tiny_model, tiny_split):
        model, __, __h = trained_tiny_model
        with pytest.raises(ValueError, match="retrieval"):
            ShardRouter.launch(
                model,
                tiny_split.train,
                config=ClusterConfig(num_workers=1, retrieval="hnsw"),
            )
