"""SGD / Adam correctness and convergence; schedules."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Adam, ConstantSchedule, SGD, StepDecay


def quadratic_loss(parameter: Parameter, target: float):
    return ((parameter - target) ** 2).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        loss = quadratic_loss(parameter, 0.0)
        loss.backward()
        optimizer.step()
        np.testing.assert_allclose(parameter.data, [1.0 - 0.1 * 2.0])

    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([5.0]))
        optimizer = SGD([parameter], lr=0.1)
        for __ in range(100):
            optimizer.zero_grad()
            quadratic_loss(parameter, 2.0).backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, [2.0], atol=1e-4)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([5.0]))
        momentum = Parameter(np.array([5.0]))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for __ in range(30):
            for parameter, optimizer in ((plain, opt_plain), (momentum, opt_momentum)):
                optimizer.zero_grad()
                quadratic_loss(parameter, 0.0).backward()
                optimizer.step()
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()  # zero task gradient
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_none_gradient_skipped(self):
        parameter = Parameter(np.array([1.0]))
        SGD([parameter], lr=0.1).step()
        np.testing.assert_allclose(parameter.data, [1.0])

    def test_validation(self):
        parameter = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([parameter], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.1, weight_decay=-1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr in magnitude.
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], lr=0.1)
        quadratic_loss(parameter, 0.0).backward()
        optimizer.step()
        np.testing.assert_allclose(parameter.data, [0.9], atol=1e-6)

    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        optimizer = Adam([parameter], lr=0.1)
        for __ in range(300):
            optimizer.zero_grad()
            quadratic_loss(parameter, 1.0).backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, [1.0, 1.0], atol=1e-3)

    def test_adapts_to_gradient_scale(self):
        # Two coordinates with wildly different gradient scales move at
        # comparable speed under Adam.
        parameter = Parameter(np.array([1.0, 1.0]))
        optimizer = Adam([parameter], lr=0.01)
        scales = np.array([100.0, 0.01])
        for __ in range(10):
            optimizer.zero_grad()
            (parameter * parameter * scales).sum().backward()
            optimizer.step()
        moved = 1.0 - parameter.data
        assert moved[0] == pytest.approx(moved[1], rel=0.2)

    def test_invalid_betas(self):
        parameter = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            Adam([parameter], betas=(1.0, 0.9))


class TestSchedules:
    def test_step_decay(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=1.0)
        schedule = StepDecay(optimizer, step_size=2, gamma=0.5)
        schedule.step()
        assert optimizer.lr == 1.0
        schedule.step()
        assert optimizer.lr == 0.5
        schedule.step()
        schedule.step()
        assert optimizer.lr == 0.25

    def test_step_decay_validation(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=1.0)
        with pytest.raises(ValueError):
            StepDecay(optimizer, step_size=0)
        with pytest.raises(ValueError):
            StepDecay(optimizer, step_size=1, gamma=0.0)

    def test_constant_schedule(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.3)
        schedule = ConstantSchedule(optimizer)
        schedule.step()
        assert optimizer.lr == 0.3
