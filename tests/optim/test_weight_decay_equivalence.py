"""Weight decay in the optimizer equals the paper's L2 loss term."""

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.optim import SGD


class TestWeightDecayEquivalence:
    def test_sgd_decay_matches_explicit_l2(self):
        # Model A: weight decay lambda in the optimizer.
        # Model B: explicit lambda * ||theta||^2 added to the loss.
        # One SGD step must produce identical parameters.
        lam = 0.01
        start = np.array([1.5, -2.0, 0.5])
        data = np.array([0.7, -0.3, 0.1])

        decayed = Parameter(start.copy())
        optimizer_a = SGD([decayed], lr=0.1, weight_decay=lam)
        loss_a = ((decayed - Tensor(data)) ** 2).sum()
        loss_a.backward()
        optimizer_a.step()

        explicit = Parameter(start.copy())
        optimizer_b = SGD([explicit], lr=0.1)
        loss_b = ((explicit - Tensor(data)) ** 2).sum() + lam * (explicit**2).sum()
        loss_b.backward()
        optimizer_b.step()

        np.testing.assert_allclose(decayed.data, explicit.data, atol=1e-12)

    def test_decay_pulls_toward_zero_at_optimum(self):
        # With task gradient zero, repeated decay steps shrink weights.
        parameter = Parameter(np.array([4.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.1)
        for __ in range(50):
            optimizer.zero_grad()
            (parameter * 0.0).sum().backward()
            optimizer.step()
        assert abs(parameter.data[0]) < 4.0 * (1 - 0.02) ** 49
