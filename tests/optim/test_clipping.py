"""Gradient clipping."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import clip_grad_norm, global_grad_norm


def params_with_grads(*grads):
    parameters = []
    for grad in grads:
        parameter = Parameter(np.zeros_like(np.asarray(grad, dtype=float)))
        parameter.grad = np.asarray(grad, dtype=float)
        parameters.append(parameter)
    return parameters


class TestGlobalNorm:
    def test_value(self):
        parameters = params_with_grads([3.0], [4.0])
        assert global_grad_norm(parameters) == pytest.approx(5.0)

    def test_skips_missing_grads(self):
        parameters = params_with_grads([3.0])
        parameters.append(Parameter(np.zeros(2)))  # no grad
        assert global_grad_norm(parameters) == pytest.approx(3.0)

    def test_empty(self):
        assert global_grad_norm([]) == 0.0


class TestClip:
    def test_scales_down_when_above(self):
        parameters = params_with_grads([3.0], [4.0])
        returned = clip_grad_norm(parameters, max_norm=1.0)
        assert returned == pytest.approx(5.0)
        assert global_grad_norm(parameters) == pytest.approx(1.0)
        np.testing.assert_allclose(parameters[0].grad, [0.6])

    def test_untouched_when_below(self):
        parameters = params_with_grads([0.3])
        clip_grad_norm(parameters, max_norm=1.0)
        np.testing.assert_allclose(parameters[0].grad, [0.3])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)

    def test_trainer_integration(self, tiny_split):
        from repro.training import GroupSATrainer, TrainingConfig
        from repro.training.two_stage import build_model
        from tests.conftest import TINY_MODEL_CONFIG

        model, batcher = build_model(tiny_split, TINY_MODEL_CONFIG)
        config = TrainingConfig(
            user_epochs=1, group_epochs=1, grad_clip=0.5, batch_size=64, seed=0
        )
        trainer = GroupSATrainer(model, tiny_split, batcher, config)
        trainer.train_user_task(epochs=1)
        trainer.train_group_task(epochs=1)
        assert np.isfinite(trainer.history.final_loss("user"))
