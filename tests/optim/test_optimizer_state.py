"""Optimizer state_dict/load_state_dict: round-trips and error paths."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import Adam, SGD


def quadratic_loss(parameter: Parameter, target: float):
    return ((parameter - target) ** 2).sum()


def _run_steps(parameter, optimizer, steps, target=0.0):
    for __ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(parameter, target).backward()
        optimizer.step()


def _make(optimizer_cls, value=5.0, **kwargs):
    parameter = Parameter(np.array([value, -value]))
    return parameter, optimizer_cls([parameter], **kwargs)


@pytest.mark.parametrize(
    "optimizer_cls, kwargs",
    [
        (Adam, {"lr": 0.05}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (SGD, {"lr": 0.05}),
    ],
)
class TestStateRoundtrip:
    def test_resumed_steps_match_uninterrupted(self, optimizer_cls, kwargs):
        straight_param, straight_opt = _make(optimizer_cls, **kwargs)
        _run_steps(straight_param, straight_opt, 10)

        resumed_param, resumed_opt = _make(optimizer_cls, **kwargs)
        _run_steps(resumed_param, resumed_opt, 4)
        snapshot = resumed_opt.state_dict()
        weights = resumed_param.data.copy()

        # "Restart": fresh parameter + optimizer restored from snapshot.
        restored_param = Parameter(weights)
        restored_opt = optimizer_cls([restored_param], **kwargs)
        restored_opt.load_state_dict(snapshot)
        _run_steps(restored_param, restored_opt, 6)
        np.testing.assert_array_equal(restored_param.data, straight_param.data)

    def test_snapshot_is_a_copy(self, optimizer_cls, kwargs):
        parameter, optimizer = _make(optimizer_cls, **kwargs)
        _run_steps(parameter, optimizer, 2)
        snapshot = optimizer.state_dict()
        frozen = {key: value.copy() for key, value in snapshot["arrays"].items()}
        _run_steps(parameter, optimizer, 2)
        for key, value in frozen.items():
            np.testing.assert_array_equal(snapshot["arrays"][key], value)


class TestStateErrors:
    def test_kind_mismatch_rejected(self):
        param_a, adam = _make(Adam, lr=0.05)
        __, sgd = _make(SGD, lr=0.05)
        with pytest.raises(ValueError, match="sgd"):
            adam.load_state_dict(sgd.state_dict())

    def test_missing_array_rejected(self):
        parameter, optimizer = _make(Adam, lr=0.05)
        state = optimizer.state_dict()
        del state["arrays"]["second_moment/0"]
        with pytest.raises(KeyError, match="second_moment/0"):
            optimizer.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        parameter, optimizer = _make(Adam, lr=0.05)
        state = optimizer.state_dict()
        state["arrays"]["first_moment/0"] = np.zeros(7)
        with pytest.raises(ValueError, match="shape mismatch"):
            optimizer.load_state_dict(state)

    def test_adam_restores_step_count(self):
        parameter, optimizer = _make(Adam, lr=0.05)
        _run_steps(parameter, optimizer, 5)
        restored = Adam([Parameter(parameter.data.copy())], lr=0.05)
        restored.load_state_dict(optimizer.state_dict())
        assert restored._step_count == 5
