"""Sparse fast path ≡ dense reference, bit for bit.

The acceptance property for row-sparse gradients: a training run with
``sparse_grads=True`` — dropout on, gradient clipping on, weight decay
on, and a kill/resume in the middle — produces final weights and
optimizer moments identical (``np.testing.assert_array_equal``, which
treats ±0.0 as equal) to the dense run.  Plus optimizer-level property
tests hammering the lazy replay with adversarial gather patterns: long
stale gaps, repeated indices, disjoint then overlapping batches, and
reads between updates.
"""

import dataclasses

import numpy as np
import pytest

from repro.autograd import Tensor, sparse_grads
from repro.nn.embedding import Embedding
from repro.optim import SGD, Adam
from repro.training import TrainingConfig
from repro.training.two_stage import build_model, fit_groupsa
from tests.conftest import TINY_MODEL_CONFIG

TRAINING = TrainingConfig(
    user_epochs=2,
    group_epochs=3,
    batch_size=16,
    learning_rate=0.02,
    weight_decay=1e-4,
    grad_clip=1.0,
    seed=11,
    interleave_user_every=2,
    sparse_grads=True,
)

#: The hard mode: dropout randomness + clipping + weight decay together.
MODEL_CONFIG = dataclasses.replace(TINY_MODEL_CONFIG, dropout=0.2)


def _train(tiny_split, training, model_config=MODEL_CONFIG, **fit_kwargs):
    model, batcher = build_model(tiny_split, model_config)
    fit_groupsa(model, tiny_split, batcher, training, **fit_kwargs)
    return model


def _assert_bit_exact(state, reference):
    assert set(state) == set(reference)
    for name in reference:
        np.testing.assert_array_equal(state[name], reference[name])


class TestTwoStageEquivalence:
    def test_sparse_matches_dense_with_dropout_clip_and_decay(self, tiny_split):
        dense = _train(
            tiny_split, dataclasses.replace(TRAINING, sparse_grads=False)
        )
        sparse = _train(tiny_split, TRAINING)
        _assert_bit_exact(sparse.state_dict(), dense.state_dict())

    def test_optimizer_moments_match_dense(self, tiny_split):
        """Not just the weights: Adam's first/second moments and step
        count must agree, or the equivalence would decay after resume."""
        from repro.training.trainer import GroupSATrainer

        states = {}
        for flag in (False, True):
            training = dataclasses.replace(TRAINING, sparse_grads=flag)
            model, batcher = build_model(tiny_split, MODEL_CONFIG)
            trainer = GroupSATrainer(model, tiny_split, batcher, training)
            trainer.train_user_task(epochs=2)
            trainer.train_group_task(epochs=2)
            states[flag] = trainer.state_dict()["optimizer"]
        assert (
            states[True]["scalars"]["step_count"]
            == states[False]["scalars"]["step_count"]
        )
        dense_arrays = states[False]["arrays"]
        sparse_arrays = states[True]["arrays"]
        assert set(dense_arrays) == set(sparse_arrays)
        for key in dense_arrays:
            np.testing.assert_array_equal(sparse_arrays[key], dense_arrays[key])

    def test_kill_and_resume_matches_uninterrupted_dense(
        self, tiny_split, tmp_path
    ):
        """Sparse run killed mid-stage-2 and resumed in a fresh process
        still lands on the dense uninterrupted run's exact weights."""

        class Killed(RuntimeError):
            pass

        def crash(log):
            if log.task == "group" and log.epoch == 2:
                raise Killed

        reference = _train(
            tiny_split, dataclasses.replace(TRAINING, sparse_grads=False)
        )
        model, batcher = build_model(tiny_split, MODEL_CONFIG)
        with pytest.raises(Killed):
            fit_groupsa(
                model, tiny_split, batcher, TRAINING,
                callback=crash, checkpoint_dir=tmp_path,
            )
        resumed, resumed_batcher = build_model(tiny_split, MODEL_CONFIG)
        fit_groupsa(
            resumed, tiny_split, resumed_batcher, TRAINING,
            checkpoint_dir=tmp_path, resume=True,
        )
        _assert_bit_exact(resumed.state_dict(), reference.state_dict())


def _adversarial_batches(rng, rows, steps):
    """Gather index streams that stress the lazy bookkeeping: hot rows
    every step, cold rows with long gaps, duplicate indices, and the
    occasional near-full batch."""
    for step in range(steps):
        kind = step % 4
        if kind == 0:
            yield rng.integers(0, max(2, rows // 10), size=12)  # hot head
        elif kind == 1:
            yield rng.integers(0, rows, size=6)  # uniform
        elif kind == 2:
            base = rng.integers(0, rows, size=4)
            yield np.concatenate([base, base, base[:2]])  # duplicates
        else:
            yield rng.permutation(rows)[: max(2, rows - 3)]  # near-full


def _run_optimizer(opt_factory, sparse, rows=40, dim=5, steps=37, seed=3):
    rng = np.random.default_rng(seed)
    table = Embedding(rows, dim, rng=np.random.default_rng(7))
    dense_weight = Tensor(
        np.random.default_rng(8).normal(size=(dim, dim)), requires_grad=True
    )
    optimizer = opt_factory([table.weight, dense_weight])
    with sparse_grads(sparse):
        for index, batch in enumerate(_adversarial_batches(rng, rows, steps)):
            gathered = table(batch)  # (n, dim): batches are 1-D
            out = gathered @ dense_weight
            loss = (out * out).sum()
            if index % 5 == 4:
                # A read-only forward between updates: the catch-up hook
                # must deliver dense-current rows mid-stream, not just at
                # sync points.
                probe = table(rng.integers(0, rows, size=3))
                loss = loss + (probe * probe).sum() * 0.0
            loss.backward()
            optimizer.step()
            optimizer.zero_grad()
    optimizer.sync()
    return table.weight.data.copy(), dense_weight.data.copy(), optimizer


OPTIMIZER_GRID = [
    pytest.param(lambda ps: Adam(ps, lr=0.01), id="adam"),
    pytest.param(lambda ps: Adam(ps, lr=0.01, weight_decay=1e-3), id="adam-wd"),
    pytest.param(lambda ps: SGD(ps, lr=0.01), id="sgd"),
    pytest.param(lambda ps: SGD(ps, lr=0.01, weight_decay=1e-3), id="sgd-wd"),
    pytest.param(lambda ps: SGD(ps, lr=0.01, momentum=0.9), id="sgd-momentum"),
    pytest.param(
        lambda ps: SGD(ps, lr=0.01, momentum=0.9, weight_decay=1e-3),
        id="sgd-momentum-wd",
    ),
]


class TestOptimizerProperty:
    @pytest.mark.parametrize("opt_factory", OPTIMIZER_GRID)
    @pytest.mark.parametrize("seed", [3, 17, 92])
    def test_sparse_bit_identical_to_dense(self, opt_factory, seed):
        table_dense, weight_dense, _ = _run_optimizer(
            opt_factory, sparse=False, seed=seed
        )
        table_sparse, weight_sparse, _ = _run_optimizer(
            opt_factory, sparse=True, seed=seed
        )
        np.testing.assert_array_equal(table_sparse, table_dense)
        np.testing.assert_array_equal(weight_sparse, weight_dense)

    @pytest.mark.parametrize("opt_factory", OPTIMIZER_GRID)
    def test_optimizer_state_round_trips_through_checkpoint(self, opt_factory):
        """state_dict → fresh optimizer → load → keep training: the
        continuation is bit-identical to never having checkpointed."""
        rng_seed = 23

        def run(split_at):
            rng = np.random.default_rng(rng_seed)
            table = Embedding(30, 4, rng=np.random.default_rng(1))
            optimizer = opt_factory([table.weight])
            for step in range(24):
                if step == split_at:
                    snapshot = optimizer.state_dict()
                    weights = table.weight.data.copy()
                    table = Embedding(30, 4, rng=np.random.default_rng(1))
                    table.weight.data[...] = weights
                    optimizer = opt_factory([table.weight])
                    optimizer.load_state_dict(snapshot)
                with sparse_grads(True):
                    out = table(rng.integers(0, 30, size=5))
                    (out * out).sum().backward()
                optimizer.step()
                optimizer.zero_grad()
            optimizer.sync()
            return table.weight.data.copy()

        np.testing.assert_array_equal(run(split_at=None), run(split_at=13))

    def test_state_dict_syncs_pending_rows(self):
        """A checkpoint taken mid-stream must not freeze stale rows."""
        table = Embedding(20, 3, rng=np.random.default_rng(1))
        optimizer = Adam([table.weight], lr=0.1, weight_decay=1e-3)
        with sparse_grads(True):
            for _ in range(4):
                out = table(np.array([0, 1]))
                (out * out).sum().backward()
                optimizer.step()
                optimizer.zero_grad()
        before = table.weight.data.copy()
        optimizer.state_dict()
        # Rows 2..19 were lazily deferred (weight decay drifts them every
        # step); state_dict must have caught them up.
        assert not np.array_equal(table.weight.data[2:], before[2:])
        assert optimizer._lazy[0] is not None
        assert not optimizer._lazy[0].ranges
