"""MLP tower behaviour."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import MLP
from repro.nn.activations import Identity, ReLU, Sigmoid


class TestMLP:
    def test_shapes(self, rng):
        mlp = MLP(6, [8, 4], 2, rng=rng)
        assert mlp(Tensor(rng.normal(size=(5, 6)))).shape == (5, 2)

    def test_no_hidden_layers(self, rng):
        mlp = MLP(4, [], 3, rng=rng)
        assert mlp(Tensor(rng.normal(size=(2, 4)))).shape == (2, 3)
        assert len(mlp.layers) == 1

    def test_linear_output_by_default(self, rng):
        mlp = MLP(4, [4], 1, rng=rng)
        assert isinstance(mlp.output_activation, Identity)
        out = mlp(Tensor(rng.normal(size=(200, 4))))
        assert (out.data < 0).any(), "linear output should produce negatives"

    def test_relu_output_option(self, rng):
        mlp = MLP(4, [4], 2, output_activation="relu", rng=rng)
        assert isinstance(mlp.output_activation, ReLU)
        out = mlp(Tensor(rng.normal(size=(50, 4))))
        assert (out.data >= 0).all()

    def test_sigmoid_output_option(self, rng):
        mlp = MLP(4, [4], 2, output_activation="sigmoid", rng=rng)
        assert isinstance(mlp.output_activation, Sigmoid)
        out = mlp(Tensor(rng.normal(size=(10, 4))))
        assert ((out.data > 0) & (out.data < 1)).all()

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            MLP(2, [2], 1, output_activation="swish")

    def test_dropout_only_in_training(self, rng):
        mlp = MLP(4, [64], 1, dropout=0.5, rng=rng)
        x = Tensor(rng.normal(size=(8, 4)))
        mlp.eval()
        first = mlp(x).data
        second = mlp(x).data
        np.testing.assert_array_equal(first, second)

    def test_gradients_reach_all_layers(self, rng):
        mlp = MLP(3, [5, 4], 1, rng=rng)
        mlp(Tensor(rng.normal(size=(6, 3)))).sum().backward()
        for name, parameter in mlp.named_parameters():
            assert parameter.grad is not None, name
