"""Robustness of attention to fully-masked candidate rows."""

import numpy as np

from repro.autograd import Tensor
from repro.nn import PairwiseAttention


class TestFullyMaskedRows:
    def test_zero_vector_output(self, rng):
        attention = PairwiseAttention(4, 4, rng=rng)
        mask = np.array([[True, True], [False, False]])
        aggregated, __ = attention(
            Tensor(rng.normal(size=(2, 4))), Tensor(rng.normal(size=(2, 2, 4))),
            mask=mask,
        )
        np.testing.assert_allclose(aggregated.data[1], np.zeros(4))
        assert np.abs(aggregated.data[0]).sum() > 0

    def test_gradients_still_flow_to_valid_rows(self, rng):
        attention = PairwiseAttention(3, 3, rng=rng)
        candidates = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        mask = np.array([[True, True], [False, False]])
        aggregated, __ = attention(
            Tensor(rng.normal(size=(2, 3))), candidates, mask=mask
        )
        aggregated.sum().backward()
        assert np.abs(candidates.grad[0]).sum() > 0
        np.testing.assert_allclose(candidates.grad[1], np.zeros((2, 3)), atol=1e-9)

    def test_user_with_no_history_gets_finite_latent(self, rng):
        from repro.core import GroupSAConfig
        from repro.core.user_modeling import UserModeling
        from repro.data.loaders import TopNeighbours

        config = GroupSAConfig(
            embedding_dim=8, attention_hidden=8, fusion_hidden=(8,), top_h=2,
            dropout=0.0,
        )
        module = UserModeling(4, 6, config, rng=rng)
        tables = TopNeighbours(
            items=np.zeros((4, 2), dtype=np.int64),
            item_mask=np.zeros((4, 2), dtype=bool),  # nobody has items
            friends=np.zeros((4, 2), dtype=np.int64),
            friend_mask=np.zeros((4, 2), dtype=bool),  # nobody has friends
        )
        out = module(Tensor(rng.normal(size=(2, 8))), np.array([0, 1]), tables)
        assert np.isfinite(out.data).all()
