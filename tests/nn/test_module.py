"""Module system: registration, traversal, modes, serialization."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, ReLU


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Linear(3, 2, rng=0)
        self.weight = Parameter(np.ones((2, 2)))
        self.not_a_param = np.zeros(3)

    def forward(self, x):
        return self.inner(x)


class TestRegistration:
    def test_parameters_are_registered(self):
        module = Nested()
        names = dict(module.named_parameters())
        assert "weight" in names
        assert "inner.weight" in names
        assert "inner.bias" in names

    def test_plain_attributes_not_registered(self):
        module = Nested()
        assert "not_a_param" not in dict(module.named_parameters())

    def test_reassignment_replaces_registration(self):
        module = Nested()
        module.weight = Parameter(np.zeros((1,)))
        assert dict(module.named_parameters())["weight"].shape == (1,)

    def test_reassign_param_to_plain_removes_it(self):
        module = Nested()
        module.weight = 3.0
        assert "weight" not in dict(module.named_parameters())

    def test_num_parameters(self):
        module = Linear(3, 2, rng=0)
        assert module.num_parameters() == 3 * 2 + 2

    def test_modules_iterates_recursively(self):
        outer = Sequential(Linear(2, 2, rng=0), ReLU())
        kinds = [type(m).__name__ for m in outer.modules()]
        assert "Sequential" in kinds and "Linear" in kinds and "ReLU" in kinds


class TestModes:
    def test_train_eval_propagates(self):
        module = Sequential(Linear(2, 2, rng=0), Nested())
        module.eval()
        assert all(not m.training for m in module.modules())
        module.train()
        assert all(m.training for m in module.modules())

    def test_zero_grad(self):
        module = Linear(2, 2, rng=0)
        out = module(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert module.weight.grad is not None
        module.zero_grad()
        assert module.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        source = Nested()
        target = Nested()
        target.load_state_dict(source.state_dict())
        for (na, pa), (nb, pb) in zip(
            source.named_parameters(), target.named_parameters()
        ):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_copies(self):
        module = Nested()
        state = module.state_dict()
        state["weight"][...] = 99.0
        assert not np.any(module.weight.data == 99.0)

    def test_missing_key_raises(self):
        module = Nested()
        state = module.state_dict()
        del state["weight"]
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_unexpected_key_raises(self):
        module = Nested()
        state = module.state_dict()
        state["phantom"] = np.zeros(1)
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        module = Nested()
        state = module.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            module.load_state_dict(state)


class TestContainers:
    def test_sequential_applies_in_order(self):
        double = Linear(2, 2, bias=False, rng=0)
        double.weight.data[...] = 2 * np.eye(2)
        seq = Sequential(double, ReLU())
        out = seq(Tensor(np.array([[-1.0, 1.0]])))
        np.testing.assert_allclose(out.data, [[0.0, 2.0]])

    def test_sequential_len_iter(self):
        seq = Sequential(ReLU(), ReLU())
        assert len(seq) == 2
        assert len(list(seq)) == 2

    def test_module_list_registers(self):
        layers = ModuleList(Linear(2, 2, rng=0) for __ in range(3))
        assert len(layers) == 3
        assert len(list(layers[0].parameters())) == 2
        assert len(dict(layers.named_parameters())) == 6

    def test_module_list_append(self):
        layers = ModuleList()
        layers.append(Linear(2, 2, rng=0))
        assert len(layers) == 1

    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
