"""Attention blocks: masking semantics, shapes, gradients."""

import numpy as np

from repro.autograd import Tensor, gradcheck
from repro.nn import (
    MASK_VALUE,
    PairwiseAttention,
    ScaledDotProductSelfAttention,
    social_bias_matrix,
)


class TestPairwiseAttention:
    def test_weights_sum_to_one(self, rng):
        attention = PairwiseAttention(4, 4, rng=rng)
        __, weights = attention(
            Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(3, 6, 4)))
        )
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones(3))

    def test_masked_candidates_get_zero_weight(self, rng):
        attention = PairwiseAttention(4, 4, rng=rng)
        mask = np.array([[True, True, False, False]] * 2)
        __, weights = attention(
            Tensor(rng.normal(size=(2, 4))),
            Tensor(rng.normal(size=(2, 4, 4))),
            mask=mask,
        )
        assert np.all(weights.data[:, 2:] < 1e-9)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones(2))

    def test_aggregation_is_convex_combination(self, rng):
        attention = PairwiseAttention(3, 3, rng=rng)
        candidates = Tensor(rng.normal(size=(2, 5, 3)))
        aggregated, weights = attention(Tensor(rng.normal(size=(2, 3))), candidates)
        manual = np.einsum("bh,bhd->bd", weights.data, candidates.data)
        np.testing.assert_allclose(aggregated.data, manual, atol=1e-10)

    def test_custom_values(self, rng):
        attention = PairwiseAttention(3, 3, rng=rng)
        values = Tensor(rng.normal(size=(2, 5, 7)))
        aggregated, __ = attention(
            Tensor(rng.normal(size=(2, 3))),
            Tensor(rng.normal(size=(2, 5, 3))),
            values=values,
        )
        assert aggregated.shape == (2, 7)

    def test_masked_candidate_gets_no_gradient(self, rng):
        attention = PairwiseAttention(3, 3, rng=rng)
        candidates = Tensor(rng.normal(size=(1, 3, 3)), requires_grad=True)
        mask = np.array([[True, True, False]])
        aggregated, __ = attention(Tensor(rng.normal(size=(1, 3))), candidates, mask=mask)
        aggregated.sum().backward()
        np.testing.assert_allclose(candidates.grad[0, 2], np.zeros(3), atol=1e-7)

    def test_gradcheck_through_attention(self, rng):
        attention = PairwiseAttention(3, 3, hidden_features=4, rng=rng)
        query = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        candidates = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        gradcheck(lambda q, c: attention(q, c)[0], [query, candidates], atol=1e-4)


class TestSelfAttention:
    def test_output_shape(self, rng):
        attention = ScaledDotProductSelfAttention(6, key_features=4, value_features=4, rng=rng)
        out, weights = attention(Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 6)
        assert weights.shape == (2, 5, 5)

    def test_attention_rows_sum_to_one(self, rng):
        attention = ScaledDotProductSelfAttention(6, rng=rng)
        __, weights = attention(Tensor(rng.normal(size=(2, 4, 6))))
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones((2, 4)))

    def test_bias_blocks_attention(self, rng):
        attention = ScaledDotProductSelfAttention(6, rng=rng)
        bias = np.zeros((1, 3, 3))
        bias[0, 0, 2] = MASK_VALUE  # member 0 may not attend to member 2
        __, weights = attention(Tensor(rng.normal(size=(1, 3, 6))), bias=bias)
        assert weights.data[0, 0, 2] < 1e-9
        assert weights.data[0, 1, 2] > 1e-9  # others unaffected

    def test_gradcheck(self, rng):
        attention = ScaledDotProductSelfAttention(4, key_features=3, value_features=3, rng=rng)
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        gradcheck(lambda t: attention(t)[0], [x], atol=1e-4)


class TestSocialBiasMatrix:
    def test_diagonal_always_enabled(self):
        adjacency = np.zeros((1, 3, 3), dtype=bool)
        bias = social_bias_matrix(adjacency)
        np.testing.assert_allclose(np.diagonal(bias[0]), np.zeros(3))

    def test_social_edges_enabled(self):
        adjacency = np.zeros((1, 3, 3), dtype=bool)
        adjacency[0, 0, 1] = adjacency[0, 1, 0] = True
        bias = social_bias_matrix(adjacency)
        assert bias[0, 0, 1] == 0.0
        assert bias[0, 0, 2] == MASK_VALUE

    def test_padding_masked_out(self):
        adjacency = np.ones((1, 3, 3), dtype=bool)
        member_mask = np.array([[True, True, False]])
        bias = social_bias_matrix(adjacency, member_mask=member_mask)
        assert bias[0, 0, 2] == MASK_VALUE  # nobody attends to padding
        assert bias[0, 2, 0] == MASK_VALUE  # padding attends to nobody...
        assert bias[0, 2, 2] == 0.0  # ...except itself (keeps softmax finite)

    def test_rejects_bad_shape(self):
        import pytest

        with pytest.raises(ValueError):
            social_bias_matrix(np.zeros((3, 3), dtype=bool))

    def test_no_self_option(self):
        adjacency = np.zeros((1, 2, 2), dtype=bool)
        bias = social_bias_matrix(adjacency, include_self=False)
        assert bias[0, 0, 0] == MASK_VALUE
