"""Linear, Embedding, LayerNorm, Dropout, activations, init schemes."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import Dropout, Embedding, LayerNorm, Linear
from repro.nn import init as nn_init


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(Tensor(rng.normal(size=(7, 4)))).shape == (7, 3)
        assert layer(Tensor(rng.normal(size=(2, 5, 4)))).shape == (2, 5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        zero = layer(Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(zero.data, np.zeros((1, 3)))

    def test_gradients_flow_to_weights(self, rng):
        layer = Linear(4, 3, rng=rng)
        layer(Tensor(rng.normal(size=(5, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_gradcheck_through_layer(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda t: layer(t).sigmoid(), [x])

    def test_glorot_option(self, rng):
        layer = Linear(100, 100, weight_init="glorot", rng=rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError):
            Linear(2, 2, weight_init="bogus")


class TestEmbedding:
    def test_lookup_shapes(self, rng):
        table = Embedding(10, 4, rng=rng)
        assert table(np.array([1, 2])).shape == (2, 4)
        assert table(np.array([[1, 2, 3], [4, 5, 6]])).shape == (2, 3, 4)

    def test_lookup_values(self, rng):
        table = Embedding(10, 4, rng=rng)
        indices = np.array([3, 3, 7])
        np.testing.assert_array_equal(table(indices).data, table.weight.data[indices])

    def test_out_of_range_raises(self, rng):
        table = Embedding(5, 2, rng=rng)
        with pytest.raises(IndexError):
            table(np.array([5]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_gradient_scatter(self, rng):
        table = Embedding(6, 3, rng=rng)
        table(np.array([2, 2, 4])).sum().backward()
        grad = table.weight.grad
        np.testing.assert_allclose(grad[2], 2 * np.ones(3))
        np.testing.assert_allclose(grad[4], np.ones(3))
        np.testing.assert_allclose(grad[0], np.zeros(3))

    def test_gaussian_option(self, rng):
        table = Embedding(1000, 8, weight_init="gaussian", rng=rng)
        assert abs(table.weight.data.std() - 0.1) < 0.02


class TestLayerNorm:
    def test_normalizes_last_axis(self, rng):
        layer = LayerNorm(6)
        out = layer(Tensor(rng.normal(loc=5.0, scale=3.0, size=(4, 6))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_affine_parameters_learnable(self, rng):
        layer = LayerNorm(4)
        layer(Tensor(rng.normal(size=(3, 4)), requires_grad=True)).sum().backward()
        assert layer.gain.grad is not None
        assert layer.bias.grad is not None

    def test_gradcheck(self, rng):
        layer = LayerNorm(5)
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        gradcheck(lambda t: layer(t), [x], atol=1e-4)

    def test_constant_row_stays_finite(self):
        layer = LayerNorm(4)
        out = layer(Tensor(np.ones((1, 4))))
        assert np.isfinite(out.data).all()


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.train(False)
        x = Tensor(rng.normal(size=(10, 10)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_zero_rate_is_identity(self, rng):
        layer = Dropout(0.0, rng=rng)
        x = Tensor(rng.normal(size=(5, 5)))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_training_mode_zeroes_and_scales(self, rng):
        layer = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_expectation_preserved(self, rng):
        layer = Dropout(0.3, rng=rng)
        x = Tensor(np.ones((200, 200)))
        assert abs(layer(x).data.mean() - 1.0) < 0.02

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestInit:
    def test_glorot_bounds(self, rng):
        weights = nn_init.glorot_uniform((50, 30), rng)
        limit = np.sqrt(6.0 / 80)
        assert np.abs(weights).max() <= limit

    def test_gaussian_std(self, rng):
        weights = nn_init.gaussian((200, 200), rng)
        assert abs(weights.std() - 0.1) < 0.01

    def test_zeros(self):
        np.testing.assert_array_equal(nn_init.zeros((3, 2)), np.zeros((3, 2)))

    def test_fans_1d(self):
        assert nn_init._fans((7,)) == (7, 7)
