"""Multi-head extension of the social self-attention."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import MASK_VALUE, ScaledDotProductSelfAttention, social_bias_matrix


class TestMultiHead:
    def test_output_shape(self, rng):
        attention = ScaledDotProductSelfAttention(
            8, key_features=8, value_features=8, num_heads=2, rng=rng
        )
        out, weights = attention(Tensor(rng.normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)
        assert weights.shape == (3, 5, 5)

    def test_head_average_rows_sum_to_one(self, rng):
        attention = ScaledDotProductSelfAttention(
            8, key_features=8, value_features=8, num_heads=4, rng=rng
        )
        __, weights = attention(Tensor(rng.normal(size=(2, 3, 8))))
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones((2, 3)))

    def test_bias_respected_by_every_head(self, rng):
        attention = ScaledDotProductSelfAttention(
            8, key_features=8, value_features=8, num_heads=2, rng=rng
        )
        adjacency = np.zeros((1, 3, 3), dtype=bool)  # only self-attention
        bias = social_bias_matrix(adjacency, member_mask=np.ones((1, 3), bool))
        __, weights = attention(Tensor(rng.normal(size=(1, 3, 8))), bias=bias)
        np.testing.assert_allclose(weights.data[0], np.eye(3), atol=1e-9)

    def test_2d_bias_broadcast(self, rng):
        attention = ScaledDotProductSelfAttention(
            8, key_features=8, value_features=8, num_heads=2, rng=rng
        )
        bias = np.full((3, 3), 0.0)
        bias[0, 1] = MASK_VALUE
        __, weights = attention(Tensor(rng.normal(size=(2, 3, 8))), bias=bias)
        assert np.all(weights.data[:, 0, 1] < 1e-9)

    def test_gradcheck(self, rng):
        attention = ScaledDotProductSelfAttention(
            6, key_features=4, value_features=4, num_heads=2, rng=rng
        )
        x = Tensor(rng.normal(size=(2, 3, 6)), requires_grad=True)
        gradcheck(lambda t: attention(t)[0], [x], atol=1e-4)

    def test_invalid_head_counts(self):
        with pytest.raises(ValueError):
            ScaledDotProductSelfAttention(8, key_features=8, num_heads=0)
        with pytest.raises(ValueError):
            ScaledDotProductSelfAttention(8, key_features=8, value_features=8, num_heads=3)

    def test_heads_in_full_model(self, tiny_split):
        from repro.core import GroupSA
        from repro.data import GroupBatcher
        from repro.graphs import tfidf_top_neighbours
        from tests.conftest import TINY_MODEL_CONFIG

        config = TINY_MODEL_CONFIG.variant(num_heads=2, key_dim=8, value_dim=8)
        train = tiny_split.train
        model = GroupSA(train.num_users, train.num_items, config)
        model.set_top_neighbours(tfidf_top_neighbours(train, config.top_h))
        batcher = GroupBatcher(train)
        scores = model.score_group_items(batcher.batch([0, 1]), np.array([0, 1]))
        assert np.isfinite(scores).all()
