"""Recommendation.trace_id across all three serving modes.

The response-to-trace correlation contract: whichever execution tier
serves the request (direct scorer, batching engine, shard cluster), the
returned ``trace_id`` names the request's span tree in the installed
tracer — and stays ``None`` when tracing is off, so responses never
carry dangling ids.
"""

import pytest

from repro.obs.spans import Tracer
from repro.serving import RecommendationService


@pytest.fixture(scope="module")
def cluster_router(trained_tiny_model, tiny_split):
    from repro.cluster import ClusterConfig, ShardRouter

    model, __, __h = trained_tiny_model
    router = ShardRouter.launch(
        model,
        tiny_split.train,
        config=ClusterConfig(num_workers=2, num_shards=2),
    )
    yield router
    router.close()


@pytest.fixture
def make_service(trained_tiny_model, tiny_split, cluster_router):
    services = []

    def build(mode):
        model, __, __h = trained_tiny_model
        if mode == "cluster":
            service = RecommendationService(
                model=model, dataset=tiny_split.train, router=cluster_router
            )
        else:
            service = RecommendationService(
                model=model, dataset=tiny_split.train
            )
            if mode == "engine":
                service.enable_engine()
                services.append(service)
        assert service._mode() == mode
        return service

    yield build
    for service in services:
        service.engine.close()
        service.engine = None


MODES = ("direct", "engine", "cluster")


@pytest.mark.parametrize("mode", MODES)
class TestTraceIdPerMode:
    def test_response_trace_id_names_the_kept_trace(self, make_service, mode):
        service = make_service(mode)
        with Tracer(sample_rate=1.0) as tracer:
            user_rec = service.recommend_for_user(1, k=5)
            group_rec = service.recommend_for_group(0, k=5)
        assert user_rec.trace_id is not None
        assert group_rec.trace_id is not None
        assert user_rec.trace_id != group_rec.trace_id
        traces = tracer.traces()
        assert set(traces) == {user_rec.trace_id, group_rec.trace_id}
        root_names = {
            spans[0].name for spans in traces.values()
        }
        assert root_names == {
            "service.recommend_for_user", "service.recommend_for_group",
        }

    def test_tracing_off_leaves_trace_id_none(self, make_service, mode):
        service = make_service(mode)
        rec = service.recommend_for_user(2, k=5)
        assert rec.trace_id is None
