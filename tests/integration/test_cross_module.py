"""Cross-module consistency checks."""

import numpy as np
import pytest

from repro.baselines import COM, PIT


class TestComPitRelationship:
    def test_com_without_conformity_matches_pit(self, tiny_split):
        """With kappa=0, COM's topic-level mixture factorizes to PIT's
        item-level mixture (same substrate, same influence EM), so the
        two models must produce identical group scores."""
        pit = PIT(num_topics=5, topic_iterations=8, impact_iterations=4, seed=2).fit(
            tiny_split
        )
        com = COM(
            num_topics=5,
            topic_iterations=8,
            influence_iterations=4,
            conformity=0.0,
            seed=2,
        ).fit(tiny_split)
        groups = np.arange(6)
        items = np.arange(6)
        np.testing.assert_allclose(
            pit.score_group_items(groups, items),
            com.score_group_items(groups, items),
            atol=1e-10,
        )

    def test_conformity_changes_scores(self, tiny_split):
        low = COM(num_topics=5, topic_iterations=8, conformity=0.0, seed=2).fit(
            tiny_split
        )
        high = COM(num_topics=5, topic_iterations=8, conformity=0.9, seed=2).fit(
            tiny_split
        )
        groups = np.arange(6)
        items = np.arange(6)
        assert not np.allclose(
            low.score_group_items(groups, items),
            high.score_group_items(groups, items),
        )

    def test_invalid_conformity(self):
        with pytest.raises(ValueError):
            COM(conformity=1.5)


class TestVariantStateDicts:
    @pytest.mark.parametrize("variant", ["GroupSA", "Group-A", "Group-S", "Group-G"])
    def test_state_dict_roundtrip_per_variant(self, tiny_split, variant):
        from repro.core import GroupSA, variant_config
        from tests.conftest import TINY_MODEL_CONFIG

        config = variant_config(variant, TINY_MODEL_CONFIG)
        train = tiny_split.train
        first = GroupSA(train.num_users, train.num_items, config)
        second = GroupSA(train.num_users, train.num_items, config)
        second.user_embedding.weight.data += 1.0  # make them differ
        second.load_state_dict(first.state_dict())
        for (na, pa), (nb, pb) in zip(
            first.named_parameters(), second.named_parameters()
        ):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_variant_parameter_counts_differ(self, tiny_split):
        from repro.core import GroupSA, variant_config
        from tests.conftest import TINY_MODEL_CONFIG

        train = tiny_split.train
        full = GroupSA(train.num_users, train.num_items, TINY_MODEL_CONFIG)
        stripped = GroupSA(
            train.num_users,
            train.num_items,
            variant_config("Group-A", TINY_MODEL_CONFIG),
        )
        assert full.num_parameters() > stripped.num_parameters()


class TestEvaluationCustomKs:
    def test_custom_ks_respected(self, tiny_split, trained_tiny_model):
        from repro.evaluation import evaluate, prepare_task

        model, __, __h = trained_tiny_model
        full = tiny_split.full
        task = prepare_task(
            tiny_split.test.user_item, full.user_items(), full.num_items,
            num_candidates=15, rng=0,
        )
        result = evaluate(model.score_user_items, task, ks=(1, 3, 7))
        assert set(result.metrics) == {
            "HR@1", "NDCG@1", "HR@3", "NDCG@3", "HR@7", "NDCG@7",
        }
        assert result.metrics["HR@1"] <= result.metrics["HR@3"] <= result.metrics["HR@7"]


class TestAnalysisEdgeCases:
    def test_embedding_neighbours_k_exceeds_table(self):
        from repro.analysis import embedding_neighbours

        table = np.eye(3)
        neighbours = embedding_neighbours(table, 0, k=10)
        assert len(neighbours) == 2  # everyone but self

    def test_runner_with_group_only_model(self):
        from repro.experiments import evaluate_model
        from tests.experiments.test_experiments import MICRO_BUDGET
        from repro.experiments import prepare_run
        from repro.baselines import GroupSARecommender, ScoreAggregationRecommender
        from tests.experiments.test_experiments import MICRO_MODEL
        from repro.training import TrainingConfig

        run = prepare_run("yelp", MICRO_BUDGET, seed=0)
        base = GroupSARecommender(
            MICRO_MODEL, TrainingConfig(user_epochs=1, group_epochs=1, batch_size=64)
        )
        base.fit(run.split)
        wrapper = ScoreAggregationRecommender(base, "avg")
        metrics = evaluate_model(wrapper, run, ks=(5,))
        assert set(metrics) == {"group"}  # no user task for aggregations
