"""End-to-end CLI workflow: generate -> train -> evaluate -> recommend."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    data = root / "world.npz"
    model = root / "model.npz"
    code = main(
        [
            "generate",
            "--preset", "yelp",
            "--scale", "0.004",
            "--seed", "3",
            "--out", str(data),
        ]
    )
    assert code == 0
    code = main(
        [
            "train",
            "--data", str(data),
            "--out", str(model),
            "--dim", "12",
            "--user-epochs", "3",
            "--group-epochs", "3",
        ]
    )
    assert code == 0
    return data, model


class TestCli:
    def test_generate_writes_dataset(self, workspace, capsys):
        data, __ = workspace
        assert data.exists()

    def test_train_writes_checkpoint(self, workspace):
        __, model = workspace
        assert model.exists()
        from repro.persistence import checkpoint_info

        config, num_users, num_items = checkpoint_info(model)
        assert config.embedding_dim == 12
        assert num_users > 0 and num_items > 0

    def test_evaluate_group_task(self, workspace, capsys):
        data, model = workspace
        code = main(
            [
                "evaluate",
                "--data", str(data),
                "--model", str(model),
                "--task", "group",
                "--candidates", "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HR@10" in out and "NDCG@5" in out

    def test_evaluate_user_task(self, workspace, capsys):
        data, model = workspace
        code = main(
            [
                "evaluate",
                "--data", str(data),
                "--model", str(model),
                "--task", "user",
                "--candidates", "20",
            ]
        )
        assert code == 0
        assert "HR@5" in capsys.readouterr().out

    def test_recommend(self, workspace, capsys):
        data, model = workspace
        code = main(
            ["recommend", "--data", str(data), "--model", str(model), "--group", "0", "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3" in out and "voting weights" in out

    def test_recommend_bad_group(self, workspace, capsys):
        data, model = workspace
        code = main(
            ["recommend", "--data", str(data), "--model", str(model), "--group", "99999"]
        )
        assert code == 2

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliCheckpointing:
    def test_train_writes_and_resumes_checkpoints(self, workspace, tmp_path):
        data, __ = workspace
        ckpt_dir = tmp_path / "ckpts"
        out = tmp_path / "model.npz"
        train_args = [
            "train",
            "--data", str(data),
            "--out", str(out),
            "--dim", "12",
            "--user-epochs", "2",
            "--group-epochs", "2",
            "--checkpoint-dir", str(ckpt_dir),
            "--keep-last", "2",
        ]
        assert main(train_args) == 0
        checkpoints = sorted(p.name for p in ckpt_dir.glob("ckpt-*.npz"))
        assert len(checkpoints) == 2  # keep-last pruning applied
        assert (ckpt_dir / "best.npz").exists()

        # A completed run resumes as a no-op and still writes --out.
        out.unlink()
        assert main(train_args + ["--resume"]) == 0
        assert out.exists()
        from repro.persistence import load_model

        assert load_model(out).num_users > 0

    def test_resume_requires_checkpoint_dir(self, workspace, tmp_path):
        data, __ = workspace
        code = main(
            [
                "train",
                "--data", str(data),
                "--out", str(tmp_path / "model.npz"),
                "--resume",
            ]
        )
        assert code == 2
