"""End-to-end integration: train on a planted world, beat random ranking,
recover the planted structure, exercise the full public API path."""

import numpy as np
import pytest

from repro.core import FastGroupRecommender, GroupSAConfig
from repro.data import GroupBatcher, split_interactions, yelp_like
from repro.evaluation import evaluate, paired_ttest, prepare_task
from repro.training import TrainingConfig, train_groupsa


@pytest.fixture(scope="module")
def pipeline():
    """A small but non-trivial trained pipeline shared by this module."""
    world = yelp_like(scale=0.006, seed=21)
    split = split_interactions(world.dataset, rng=4)
    config = GroupSAConfig(
        embedding_dim=16,
        key_dim=16,
        value_dim=16,
        ffn_hidden=16,
        attention_hidden=16,
        prediction_hidden=(16,),
        fusion_hidden=(16,),
        top_h=3,
        seed=11,
    )
    training = TrainingConfig(
        user_epochs=12, group_epochs=20, learning_rate=0.01, seed=11
    )
    model, batcher, history = train_groupsa(split, config, training)
    full = split.full
    user_task = prepare_task(
        split.test.user_item, full.user_items(), full.num_items,
        num_candidates=50, rng=5,
    )
    group_task = prepare_task(
        split.test.group_item, full.group_items(), full.num_items,
        num_candidates=50, rng=6,
    )
    return world, split, model, batcher, history, user_task, group_task


RANDOM_HR10 = 10.0 / 51.0  # 50 candidates + 1 positive


class TestEndToEnd:
    def test_losses_decrease(self, pipeline):
        __, __, __m, __b, history, __u, __g = pipeline
        user = history.losses("user")
        group = history.losses("group")
        assert user[-1] < user[0]
        assert group[-1] < group[0]

    def test_user_task_beats_random(self, pipeline):
        __, __, model, __b, __h, user_task, __g = pipeline
        result = evaluate(model.score_user_items, user_task)
        assert result.metrics["HR@10"] > 1.5 * RANDOM_HR10

    def test_group_task_beats_random(self, pipeline):
        __, __, model, batcher, __h, __u, group_task = pipeline
        result = evaluate(
            lambda g, i: model.score_group_items(batcher.batch(g), i), group_task
        )
        assert result.metrics["HR@10"] > 1.5 * RANDOM_HR10

    def test_fast_recommendation_close_to_full(self, pipeline):
        __, __, model, batcher, __h, __u, group_task = pipeline
        full_result = evaluate(
            lambda g, i: model.score_group_items(batcher.batch(g), i), group_task
        )
        fast = FastGroupRecommender(model, "avg")
        fast_result = evaluate(
            lambda g, i: fast.score_group_items(batcher.batch(g), i), group_task
        )
        # Section II-F: fast scores should stay competitive (allow a
        # generous band; it avoids the whole voting forward pass).
        assert fast_result.metrics["HR@10"] > 0.5 * full_result.metrics["HR@10"]

    def test_significance_machinery_on_real_outputs(self, pipeline):
        __, __, model, batcher, __h, __u, group_task = pipeline
        trained = evaluate(
            lambda g, i: model.score_group_items(batcher.batch(g), i), group_task
        )
        rng = np.random.default_rng(0)
        random_result = evaluate(
            lambda g, i: rng.normal(size=len(g)), group_task
        )
        result = paired_ttest(
            trained.per_example("HR@10"), random_result.per_example("HR@10")
        )
        assert result.statistic > 0

    def test_member_attention_is_item_dependent(self, pipeline):
        # The paper's case study (Table IV) shows the member weights
        # shifting with the target item — the expertise mechanism.  At
        # this training scale we assert the qualitative property: the
        # same group receives different weight profiles for different
        # items, and the weights stay a valid distribution.
        world, split, model, batcher, __h, __u, group_task = pipeline
        sizes = split.train.group_sizes()
        group = int(np.argmax(sizes))
        batch = batcher.batch([group, group])
        gammas = model.member_attention(batch, np.array([0, 1]))
        np.testing.assert_allclose(gammas.sum(axis=1), np.ones(2), atol=1e-8)
        assert not np.allclose(gammas[0], gammas[1])

    def test_recommendation_lists(self, pipeline):
        from repro.evaluation import top_k_items

        __, split, model, batcher, __h, __u, __g = pipeline
        group_items = split.full.group_items()
        top = top_k_items(
            lambda g, i: model.score_group_items(batcher.batch(g), i),
            entity=0,
            num_items=split.train.num_items,
            k=5,
            exclude=group_items[0],
        )
        assert len(top) == 5
        assert not set(top.tolist()) & group_items[0]


class TestStatePersistence:
    def test_model_state_roundtrip_preserves_scores(self, pipeline, tmp_path):
        __, split, model, batcher, __h, __u, __g = pipeline
        users = np.arange(8)
        items = np.arange(8)
        before = model.score_user_items(users, items)

        state = model.state_dict()
        np.savez(tmp_path / "model.npz", **state)
        loaded = dict(np.load(tmp_path / "model.npz"))

        from repro.core import GroupSA

        clone = GroupSA(split.train.num_users, split.train.num_items, model.config)
        clone.set_top_neighbours(model.top_neighbours)
        clone.load_state_dict(loaded)
        after = clone.score_user_items(users, items)
        np.testing.assert_allclose(before, after)
