"""RecommendationService end-to-end."""

import numpy as np
import pytest

from repro.persistence import save_model
from repro.serving import Recommendation, RecommendationService


@pytest.fixture(scope="module")
def service(trained_tiny_model, tiny_split):
    model, __, __h = trained_tiny_model
    return RecommendationService(model=model, dataset=tiny_split.train)


class TestUserRequests:
    def test_top_k(self, service):
        rec = service.recommend_for_user(0, k=5)
        assert isinstance(rec, Recommendation)
        assert len(rec.items) == 5
        assert len(rec.scores) == 5
        assert rec.entity == "user:0"

    def test_scores_sorted_descending(self, service):
        rec = service.recommend_for_user(1, k=5)
        assert rec.scores == sorted(rec.scores, reverse=True)

    def test_excludes_history(self, service, tiny_split):
        rec = service.recommend_for_user(2, k=10)
        assert not set(rec.items) & tiny_split.train.user_items()[2]

    def test_out_of_range(self, service):
        with pytest.raises(IndexError):
            service.recommend_for_user(10**6)

    def test_rejects_k_below_one(self, service):
        with pytest.raises(ValueError, match="k must be"):
            service.recommend_for_user(0, k=0)
        with pytest.raises(ValueError, match="k must be"):
            service.recommend_for_user(0, k=-3)


class TestGroupRequests:
    def test_top_k_with_explanation(self, service, tiny_split):
        rec = service.recommend_for_group(0, k=3)
        assert len(rec.items) == 3
        members = tiny_split.train.group_members[0]
        assert set(rec.voting_weights) == set(int(m) for m in members)
        assert sum(rec.voting_weights.values()) == pytest.approx(1.0, abs=1e-6)

    def test_out_of_range(self, service):
        with pytest.raises(IndexError):
            service.recommend_for_group(10**6)

    def test_rejects_k_below_one(self, service):
        with pytest.raises(ValueError, match="k must be"):
            service.recommend_for_group(0, k=0)


class TestAdhocRequests:
    def test_members_request(self, service):
        rec = service.recommend_for_members([0, 1, 2], k=4)
        assert len(rec.items) == 4
        assert rec.entity == "adhoc:0,1,2"
        assert set(rec.voting_weights) == {0, 1, 2}

    def test_member_validation(self, service):
        with pytest.raises(IndexError):
            service.recommend_for_members([0, 10**6])

    def test_rejects_empty_members(self, service):
        with pytest.raises(ValueError, match="non-empty"):
            service.recommend_for_members([])

    def test_rejects_k_below_one(self, service):
        with pytest.raises(ValueError, match="k must be"):
            service.recommend_for_members([0, 1], k=0)

    def test_duplicates_collapse_to_canonical_order(self, service):
        """Unsorted, duplicated member lists: one vote per unique member,
        voting weights keyed by the canonical (ascending unique) order."""
        messy = service.recommend_for_members([3, 1, 3, 2], k=4)
        clean = service.recommend_for_members([1, 2, 3], k=4)
        assert messy.items == clean.items
        assert messy.scores == clean.scores
        assert set(messy.voting_weights) == {1, 2, 3}
        assert messy.voting_weights == clean.voting_weights
        assert sum(messy.voting_weights.values()) == pytest.approx(1.0, abs=1e-6)


class TestCheckpointConstruction:
    def test_from_checkpoint(self, trained_tiny_model, tiny_split, tmp_path):
        model, __, __h = trained_tiny_model
        path = tmp_path / "m.npz"
        save_model(model, path)
        service = RecommendationService.from_checkpoint(path, tiny_split.train)
        rec = service.recommend_for_user(0, k=3)
        assert len(rec.items) == 3

    def test_mismatched_dataset_rejected(self, trained_tiny_model, tmp_path):
        from repro.data import yelp_like

        model, __, __h = trained_tiny_model
        path = tmp_path / "m.npz"
        save_model(model, path)
        other = yelp_like(scale=0.004).dataset
        with pytest.raises(ValueError, match="entity counts"):
            RecommendationService.from_checkpoint(path, other)
