"""Reproducibility guarantees: same seeds => same everything."""

import numpy as np

from repro.core import GroupSAConfig
from repro.data import split_interactions, yelp_like
from repro.training import TrainingConfig, train_groupsa
from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING


class TestDeterminism:
    def test_full_training_run_is_deterministic(self, tiny_split):
        results = []
        for __ in range(2):
            model, batcher, history = train_groupsa(
                tiny_split, TINY_MODEL_CONFIG, TINY_TRAINING
            )
            scores = model.score_user_items(np.arange(5), np.arange(5))
            results.append((history.losses("user"), scores))
        np.testing.assert_allclose(results[0][0], results[1][0])
        np.testing.assert_allclose(results[0][1], results[1][1])

    def test_different_training_seed_changes_model(self, tiny_split):
        import dataclasses

        first, __, __h = train_groupsa(tiny_split, TINY_MODEL_CONFIG, TINY_TRAINING)
        other_training = dataclasses.replace(TINY_TRAINING, seed=123)
        second, __b, __h2 = train_groupsa(
            tiny_split, TINY_MODEL_CONFIG, other_training
        )
        a = first.score_user_items(np.arange(5), np.arange(5))
        b = second.score_user_items(np.arange(5), np.arange(5))
        assert not np.allclose(a, b)

    def test_world_generation_stable_across_sessions(self):
        # Pin a few generated values so accidental generator changes
        # surface as explicit test failures (the experiment tables in
        # EXPERIMENTS.md depend on this stream).
        world = yelp_like(scale=0.005, seed=7)
        dataset = world.dataset
        assert dataset.num_users == 172
        assert len(dataset.user_item) > 0
        # Stable checksum of the edge list for this seed.
        checksum = int(dataset.user_item.sum() + dataset.group_item.sum())
        repeat = yelp_like(scale=0.005, seed=7).dataset
        assert int(repeat.user_item.sum() + repeat.group_item.sum()) == checksum

    def test_split_then_train_pipeline_deterministic(self):
        world = yelp_like(scale=0.005, seed=9)
        outputs = []
        for __ in range(2):
            split = split_interactions(world.dataset, rng=5)
            config = GroupSAConfig(
                embedding_dim=8, key_dim=8, value_dim=8, ffn_hidden=8,
                attention_hidden=8, top_h=2, prediction_hidden=(8,),
                fusion_hidden=(8,), dropout=0.0, seed=1,
            )
            training = TrainingConfig(
                user_epochs=2, group_epochs=2, batch_size=64, seed=1
            )
            model, batcher, __h = train_groupsa(split, config, training)
            outputs.append(
                model.score_group_items(batcher.batch([0, 1]), np.array([0, 1]))
            )
        np.testing.assert_allclose(outputs[0], outputs[1])
