"""Extended overall harness (classic CF + generative models)."""

from repro.experiments.overall_extended import MODEL_ORDER, run_overall_extended
from tests.experiments.test_experiments import MICRO_BUDGET, MICRO_MODEL


class TestOverallExtended:
    def test_all_models_present(self):
        rows = run_overall_extended("yelp", MICRO_BUDGET, MICRO_MODEL)
        assert set(rows) == set(MODEL_ORDER)

    def test_every_model_scores_both_tasks(self):
        rows = run_overall_extended("yelp", MICRO_BUDGET, MICRO_MODEL)
        for name, tasks in rows.items():
            assert "group" in tasks, name
            assert "user" in tasks, name
            for metrics in tasks.values():
                for value in metrics.values():
                    assert 0.0 <= value <= 1.0
