"""Reporting helpers: delta cells, missing rows, empty metrics."""

from repro.experiments.reporting import (
    _cell,
    _delta_cell,
    format_metric_table,
    format_overall_table,
)


class TestCells:
    def test_none_renders_dash(self):
        assert _cell(None, 8).strip() == "-"

    def test_value_formatting(self):
        assert _cell(0.12345, 9).strip() == "0.1235"

    def test_delta_of_reference_is_dash(self):
        assert _delta_cell(0.5, 0.5, "GroupSA", "GroupSA").strip() == "-"

    def test_delta_against_zero_is_dash(self):
        assert _delta_cell(0.5, 0.0, "Pop", "GroupSA").strip() == "-"

    def test_delta_value(self):
        cell = _delta_cell(0.6, 0.4, "Pop", "GroupSA")
        assert cell.strip() == "50.00"

    def test_negative_delta(self):
        cell = _delta_cell(0.3, 0.4, "Pop", "GroupSA")
        assert cell.strip() == "-25.00"


class TestTables:
    def test_overall_without_reference_row(self):
        rows = {"Pop": {"group": {"HR@5": 0.2, "NDCG@5": 0.1, "HR@10": 0.3, "NDCG@10": 0.2}}}
        text = format_overall_table(rows, "yelp", reference="GroupSA")
        assert "Pop" in text  # renders, deltas become dashes

    def test_metric_table_missing_metric(self):
        rows = {"a": {"HR@5": 0.1}}
        text = format_metric_table(rows, "T", metrics=("HR@5", "HR@10"))
        assert "0.1000" in text
        assert "-" in text

    def test_metric_table_custom_metrics(self):
        rows = {"x": {"MRR": 0.5}}
        text = format_metric_table(rows, "T", metrics=("MRR",))
        assert "MRR" in text and "0.5000" in text
