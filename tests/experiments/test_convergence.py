"""Convergence tracing harness."""

import pytest

from repro.experiments.convergence import trace_convergence
from repro.training import TrainingConfig
from tests.conftest import TINY_MODEL_CONFIG


@pytest.fixture(scope="module")
def curve(tiny_split):
    training = TrainingConfig(
        user_epochs=3, group_epochs=4, batch_size=64, seed=0,
        interleave_user_every=2,
    )
    return trace_convergence(
        tiny_split, TINY_MODEL_CONFIG, training, check_every=2, num_candidates=10
    )


class TestConvergence:
    def test_point_counts(self, curve):
        assert len(curve.losses("user")) == 3
        assert len(curve.losses("group")) == 4

    def test_user_loss_decreases(self, curve):
        losses = curve.losses("user")
        assert losses[-1] <= losses[0]

    def test_validation_checked_on_schedule(self, curve):
        group_points = [p for p in curve.points if p.stage == "group"]
        checked = [p.epoch for p in group_points if p.validation_hr10 is not None]
        assert checked == [2, 4]

    def test_csv_shape(self, curve):
        csv = curve.to_csv()
        lines = csv.splitlines()
        assert lines[0] == "stage,epoch,loss,validation_hr10"
        assert len(lines) == 1 + len(curve.points)
        assert all(line.count(",") == 3 for line in lines[1:])

    def test_group_g_variant_has_no_user_stage(self, tiny_split):
        from repro.core import variant_config

        config = variant_config("Group-G", TINY_MODEL_CONFIG)
        training = TrainingConfig(user_epochs=2, group_epochs=2, batch_size=64, seed=0)
        curve = trace_convergence(
            tiny_split, config, training, check_every=1, num_candidates=10
        )
        assert curve.losses("user") == []
        assert len(curve.losses("group")) == 2
