"""ASCII figure rendering."""

import pytest

from repro.experiments.figures import render_bar_chart, render_figure3

ROWS = {
    "Group-A": {"HR@5": 0.4, "HR@10": 0.5, "NDCG@5": 0.3, "NDCG@10": 0.35},
    "GroupSA": {"HR@5": 0.5, "HR@10": 0.8, "NDCG@5": 0.4, "NDCG@10": 0.5},
}


class TestBarChart:
    def test_contains_all_models_and_values(self):
        chart = render_bar_chart(ROWS, "HR@10")
        assert "Group-A" in chart and "GroupSA" in chart
        assert "0.5000" in chart and "0.8000" in chart

    def test_largest_value_gets_longest_bar(self):
        chart = render_bar_chart(ROWS, "HR@10", width=20)
        lines = {line.split(" ")[0]: line for line in chart.splitlines()[1:]}
        assert lines["GroupSA"].count("#") > lines["Group-A"].count("#")

    def test_max_bar_fills_width(self):
        chart = render_bar_chart(ROWS, "HR@10", width=20)
        best_line = next(l for l in chart.splitlines() if l.startswith("GroupSA"))
        assert best_line.count("#") == 20

    def test_zero_value(self):
        rows = {"a": {"m": 0.0}, "b": {"m": 1.0}}
        chart = render_bar_chart(rows, "m", width=10)
        zero_line = next(l for l in chart.splitlines() if l.startswith("a"))
        assert "#" not in zero_line

    def test_custom_title(self):
        assert render_bar_chart(ROWS, "HR@5", title="Panel").startswith("Panel")

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart({}, "HR@5")


class TestFigure3:
    def test_four_panels(self):
        figure = render_figure3(ROWS, "yelp")
        assert figure.count("(yelp)") == 4
        for metric in ("HR@5", "HR@10", "NDCG@5", "NDCG@10"):
            assert metric in figure
