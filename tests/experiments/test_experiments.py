"""Experiment harnesses: budgets, runner plumbing, reporting, registry.

These use a micro budget so the whole file stays fast; the full-budget
runs live in the benchmarks.
"""

import numpy as np
import pytest

from repro.core import GroupSAConfig
from repro.experiments import (
    ExperimentBudget,
    dataset_config,
    evaluate_model,
    prepare_run,
    with_training,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import format_metric_table, format_overall_table
from repro.training import TrainingConfig

MICRO_BUDGET = ExperimentBudget(
    scale=0.004,
    seeds=(0,),
    training=TrainingConfig(user_epochs=2, group_epochs=2, batch_size=64),
    num_candidates=20,
)

MICRO_MODEL = GroupSAConfig(
    embedding_dim=8,
    key_dim=8,
    value_dim=8,
    ffn_hidden=8,
    attention_hidden=8,
    top_h=2,
    prediction_hidden=(8,),
    fusion_hidden=(8,),
    dropout=0.0,
)


class TestRunner:
    def test_dataset_config_known(self):
        assert dataset_config("yelp", 0.01, 0).name == "yelp-like"
        assert dataset_config("douban", 0.01, 0).name == "douban-like"

    def test_dataset_config_unknown(self):
        with pytest.raises(ValueError):
            dataset_config("netflix", 0.01, 0)

    def test_prepare_run_structure(self):
        run = prepare_run("yelp", MICRO_BUDGET, seed=0)
        assert run.user_task.num_candidates == 20
        assert len(run.group_task.edges) > 0

    def test_prepare_run_seed_changes_world(self):
        first = prepare_run("yelp", MICRO_BUDGET, seed=0)
        second = prepare_run("yelp", MICRO_BUDGET, seed=1)
        assert not np.array_equal(
            first.split.test.user_item, second.split.test.user_item
        )

    def test_evaluate_model_returns_both_tasks(self):
        from repro.baselines import Popularity

        run = prepare_run("yelp", MICRO_BUDGET, seed=0)
        metrics = evaluate_model(Popularity(), run, ks=(5, 10))
        assert set(metrics) == {"user", "group"}
        assert "HR@5" in metrics["user"]

    def test_with_training(self):
        changed = with_training(MICRO_BUDGET, negatives_per_positive=4)
        assert changed.training.negatives_per_positive == 4
        assert MICRO_BUDGET.training.negatives_per_positive == 1


class TestReporting:
    def test_overall_table_contains_models_and_deltas(self):
        rows = {
            "Pop": {"group": {"HR@5": 0.2, "NDCG@5": 0.1, "HR@10": 0.3, "NDCG@10": 0.15}},
            "GroupSA": {
                "user": {"HR@5": 0.5, "NDCG@5": 0.4, "HR@10": 0.6, "NDCG@10": 0.45},
                "group": {"HR@5": 0.4, "NDCG@5": 0.3, "HR@10": 0.6, "NDCG@10": 0.4},
            },
        }
        text = format_overall_table(rows, "yelp")
        assert "Pop" in text and "GroupSA" in text
        assert "100.00" in text  # (0.4 - 0.2) / 0.2
        assert text.count("-") > 0  # missing user rows rendered as '-'

    def test_metric_table(self):
        rows = {"1": {"HR@5": 0.1, "HR@10": 0.2, "NDCG@5": 0.05, "NDCG@10": 0.1}}
        text = format_metric_table(rows, "Sweep", key_header="N_X")
        assert "Sweep" in text and "N_X" in text and "0.1000" in text


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "table9",
            "figure3",
            "significance",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table42")

    def test_table1_runs(self, capsys):
        text = run_experiment("table1", MICRO_BUDGET)
        assert "# Users" in text
        assert "yelp" in text and "douban" in text


class TestHarnessesSmoke:
    """Each harness runs end-to-end at the micro budget."""

    def test_overall(self):
        from repro.experiments.overall import run_overall

        rows = run_overall("yelp", MICRO_BUDGET, MICRO_MODEL)
        assert "GroupSA" in rows and "Pop" in rows
        assert "group" in rows["GroupSA"]

    def test_ablations(self):
        from repro.experiments.ablations import run_ablations

        rows = run_ablations(
            "yelp", MICRO_BUDGET, MICRO_MODEL, variants=("Group-S", "GroupSA")
        )
        assert set(rows) == {"Group-S", "GroupSA"}

    def test_joint_training(self):
        from repro.experiments.joint_training import run_joint_training

        rows = run_joint_training("yelp", MICRO_BUDGET, MICRO_MODEL)
        assert set(rows) == {"NCF", "Group-G", "GroupSA"}

    def test_hyperparam_sweeps(self):
        from repro.experiments.hyperparams import (
            sweep_attention_layers,
            sweep_blend_weight,
            sweep_negatives,
        )

        nx = sweep_attention_layers("yelp", MICRO_BUDGET, MICRO_MODEL, values=(1, 2))
        assert set(nx) == {"1", "2"}
        wu = sweep_blend_weight("yelp", MICRO_BUDGET, MICRO_MODEL, values=(0.5,))
        assert set(wu) == {"0.5"}
        negatives = sweep_negatives("yelp", MICRO_BUDGET, MICRO_MODEL, values=(2,))
        assert set(negatives) == {"2"}

    def test_group_size(self):
        from repro.experiments.group_size import run_group_size

        rows = run_group_size("yelp", MICRO_BUDGET, MICRO_MODEL)
        assert rows  # at least one bin populated
        for metrics in rows.values():
            assert "HR@5" in metrics

    def test_case_study(self):
        from repro.experiments.case_study import run_case_study

        study = run_case_study("yelp", MICRO_BUDGET, MICRO_MODEL, num_negatives=1)
        assert study.rows
        text = study.format()
        assert "Table IV" in text
        models = {row.model for row in study.rows}
        assert models == {"GroupSA", "Group-S"}
        for row in study.rows:
            assert 0.0 <= row.score <= 1.0
            np.testing.assert_allclose(row.member_weights.sum(), 1.0, atol=1e-6)
