"""The report-generation script."""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "run_all_experiments.py"


class TestProfiles:
    def test_profiles_cover_all_experiments(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location("run_all", SCRIPT)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        from repro.experiments.registry import EXPERIMENTS

        for profile, budgets in module.PROFILES.items():
            assert set(budgets) == set(EXPERIMENTS), profile


@pytest.mark.slow
class TestScriptExecution:
    def test_table1_via_script(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                str(SCRIPT),
                "--profile",
                "bench",
                "--only",
                "table1",
                "--out",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
            timeout=300,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "table1.txt").exists()
        assert "# Users" in (tmp_path / "table1.txt").read_text()
        assert (tmp_path / "ALL.txt").exists()
