"""Validation grid search and significance reporting."""

import numpy as np
import pytest

from repro.core import GroupSAConfig
from repro.tuning import grid_search, validation_task
from tests.conftest import TINY_MODEL_CONFIG, TINY_TRAINING


class TestValidationTask:
    def test_candidates_avoid_train_and_validation(self, tiny_split):
        task = validation_task(tiny_split, num_candidates=15)
        train_items = tiny_split.train.group_items()
        valid_items = tiny_split.validation.group_items()
        for (group, __), row in zip(task.edges, task.candidates):
            seen = train_items[group] | valid_items[group]
            assert not set(row.tolist()) & seen

    def test_edges_are_validation_edges(self, tiny_split):
        task = validation_task(tiny_split)
        np.testing.assert_array_equal(task.edges, tiny_split.validation.group_item)


class TestGridSearch:
    def test_runs_all_grid_points(self, tiny_split):
        result = grid_search(
            tiny_split,
            grid={"num_attention_layers": [1, 2]},
            base=TINY_MODEL_CONFIG,
            training=TINY_TRAINING,
            num_candidates=10,
        )
        assert len(result.trials) == 2
        assert {t.overrides["num_attention_layers"] for t in result.trials} == {1, 2}

    def test_cartesian_product(self, tiny_split):
        result = grid_search(
            tiny_split,
            grid={"num_attention_layers": [1, 2], "top_h": [2, 3]},
            base=TINY_MODEL_CONFIG,
            training=TINY_TRAINING,
            num_candidates=10,
        )
        assert len(result.trials) == 4

    def test_best_and_config(self, tiny_split):
        result = grid_search(
            tiny_split,
            grid={"blend_weight": [0.5, 0.9]},
            base=TINY_MODEL_CONFIG,
            training=TINY_TRAINING,
            num_candidates=10,
        )
        best = result.best
        assert best.metrics["HR@10"] == max(
            t.metrics["HR@10"] for t in result.trials
        )
        config = result.best_config(TINY_MODEL_CONFIG)
        assert isinstance(config, GroupSAConfig)
        assert config.blend_weight == best.overrides["blend_weight"]

    def test_format(self, tiny_split):
        result = grid_search(
            tiny_split,
            grid={"top_h": [2]},
            base=TINY_MODEL_CONFIG,
            training=TINY_TRAINING,
            num_candidates=10,
        )
        text = result.format()
        assert "top_h=2" in text and "best" in text

    def test_empty_grid_rejected(self, tiny_split):
        with pytest.raises(ValueError):
            grid_search(tiny_split, grid={})

    def test_empty_best_rejected(self):
        from repro.tuning import SearchResult

        with pytest.raises(ValueError):
            SearchResult().best


class TestSignificanceReport:
    def test_report_runs_and_formats(self):
        from repro.experiments.runner import ExperimentBudget
        from repro.experiments.significance import (
            format_significance,
            run_significance,
        )
        from repro.training import TrainingConfig

        budget = ExperimentBudget(
            scale=0.004,
            seeds=(0,),
            training=TrainingConfig(user_epochs=2, group_epochs=2, batch_size=64),
            num_candidates=20,
        )
        micro = GroupSAConfig(
            embedding_dim=8,
            key_dim=8,
            value_dim=8,
            ffn_hidden=8,
            attention_hidden=8,
            top_h=2,
            prediction_hidden=(8,),
            fusion_hidden=(8,),
            dropout=0.0,
        )
        rows = run_significance("yelp", budget, micro, metrics=("HR@10",))
        baselines = {row.baseline for row in rows}
        assert baselines == {"Pop", "NCF", "AGREE", "SIGR"}
        for row in rows:
            assert 0.0 <= row.ttest.p_value <= 1.0
        text = format_significance(rows, "yelp")
        assert "Paired t-tests" in text and "Pop" in text
